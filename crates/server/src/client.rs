//! `pxml-client`: the blocking client for the server's wire protocol.
//!
//! One [`Client`] wraps one TCP connection bound to one tenant; its methods
//! map 1:1 onto the request tags of [`crate::frame::tag`]. The harness's
//! E17 request-rate sweep and the server test suites drive the server
//! exclusively through this type, so it doubles as the protocol's
//! conformance reference.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use pxml_core::{FuzzyTree, UpdateTransaction};
use pxml_store::{parse_fuzzy_document, serialize_batch};
use pxml_tree::XmlDocument;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::tag;
use crate::frame::{
    read_response, write_request, FrameError, RawResponse, DEFAULT_MAX_FRAME_BYTES,
};

/// Client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport problem (connect, send, or a broken stream).
    Io(io::Error),
    /// The response frame could not be read or decoded.
    Frame(FrameError),
    /// Admission control shed the request (`scope` is `global` or
    /// `tenant`); nothing was executed, retry later.
    Busy { scope: String, message: String },
    /// The server answered with a typed error frame. `retryable` is the
    /// server's own judgement (the second payload line): `true` means the
    /// same request may succeed later — e.g. a quarantined document the
    /// server is re-opening — `false` means retrying verbatim cannot help.
    Server {
        code: String,
        retryable: bool,
        message: String,
    },
    /// The server answered with a frame the client cannot make sense of
    /// (unexpected tag, unparseable payload).
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "transport error: {err}"),
            ClientError::Frame(err) => write!(f, "response framing error: {err}"),
            ClientError::Busy { scope, message } => write!(f, "busy ({scope}): {message}"),
            ClientError::Server {
                code,
                retryable,
                message,
            } => {
                let kind = if *retryable { "retryable" } else { "final" };
                write!(f, "server error [{code}, {kind}]: {message}")
            }
            ClientError::Protocol(message) => write!(f, "protocol error: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<FrameError> for ClientError {
    fn from(err: FrameError) -> Self {
        ClientError::Frame(err)
    }
}

impl ClientError {
    /// `true` when the failure is an admission-control shed — the caller
    /// may retry after backing off; nothing happened server-side.
    pub fn is_busy(&self) -> bool {
        matches!(self, ClientError::Busy { .. })
    }

    /// `true` when the failure is transient and a retry may succeed:
    /// admission sheds, server errors the server itself marked retryable
    /// (quarantined documents under auto-reopen, raw storage failures),
    /// and socket timeouts. [`RetryPolicy`] retries exactly these.
    ///
    /// Caveat for timeouts: a timed-out read leaves the late response in
    /// the stream, desynchronizing this connection — reconnect before
    /// retrying (a [`RetryPolicy`] closure that dials a fresh [`Client`]
    /// does this naturally).
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Busy { .. } => true,
            ClientError::Server { retryable, .. } => *retryable,
            ClientError::Io(err) | ClientError::Frame(FrameError::Io(err)) => matches!(
                err.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ),
            _ => false,
        }
    }
}

/// One merged query answer: a distinct answer tree and its exact
/// probability.
#[derive(Debug, Clone)]
pub struct RemoteAnswer {
    /// Probability that this answer tree appears in a random world.
    pub probability: f64,
    /// The answer tree, serialized as plain XML.
    pub xml: String,
}

/// The decoded payload of an `answers` frame.
#[derive(Debug, Clone)]
pub struct RemoteAnswers {
    /// Commit sequence number of the snapshot the query ran against.
    pub seq: u64,
    /// Probability that the pattern matches at all.
    pub selection: f64,
    /// Merged answers, most probable first.
    pub answers: Vec<RemoteAnswer>,
}

/// The decoded payload of a `stats` frame — a wire-side mirror of
/// [`pxml_warehouse::WarehouseStats`] plus the derived occupancy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RemoteStats {
    pub updates_applied: usize,
    pub queries_evaluated: usize,
    pub simplifications: usize,
    pub checkpoints: usize,
    pub fsyncs: usize,
    pub grouped_commits: usize,
    pub grouped_windows: usize,
    /// Mean commits per flushed group-commit window; `0.0` on tenants that
    /// never flushed one (the server guarantees this is never NaN).
    pub mean_window_occupancy: f64,
    /// Documents currently quarantined after a failed commit (writes get
    /// typed retryable errors until the server's auto-reopen restores
    /// them; reads keep serving the last durable snapshot).
    pub quarantined_docs: usize,
    /// Names of those quarantined documents, sorted.
    pub quarantined: Vec<String>,
}

/// Socket-level tuning for a [`Client`] connection.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Read deadline per response; a server that stops answering surfaces
    /// as a transient timeout error instead of a hang. `None` blocks
    /// forever.
    pub read_timeout: Option<Duration>,
    /// Write deadline per request frame.
    pub write_timeout: Option<Duration>,
    /// Cap on a response frame's declared length.
    pub max_frame_bytes: u32,
}

impl Default for ClientConfig {
    /// 30 s read and write deadlines (matching the server's default idle
    /// deadline) and the protocol's default frame cap.
    fn default() -> Self {
        ClientConfig {
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(30)),
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
        }
    }
}

/// A blocking protocol client: one TCP connection, one tenant.
pub struct Client {
    stream: TcpStream,
    tenant: String,
    max_frame_bytes: u32,
}

impl Client {
    /// Connects and binds every subsequent request to `tenant`, with the
    /// default [`ClientConfig`] (30 s socket deadlines).
    pub fn connect(addr: impl ToSocketAddrs, tenant: impl Into<String>) -> io::Result<Client> {
        Client::connect_with(addr, tenant, ClientConfig::default())
    }

    /// Connects with explicit socket tuning.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        tenant: impl Into<String>,
        config: ClientConfig,
    ) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(config.read_timeout)?;
        stream.set_write_timeout(config.write_timeout)?;
        Ok(Client {
            stream,
            tenant: tenant.into(),
            max_frame_bytes: config.max_frame_bytes,
        })
    }

    /// The tenant this connection is bound to.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    fn call(&mut self, tag: u8, payload: &[u8]) -> Result<RawResponse, ClientError> {
        write_request(&mut self.stream, tag, &self.tenant, payload)?;
        let response = read_response(&mut self.stream, self.max_frame_bytes)?;
        match response.tag {
            tag::ERROR => {
                // Payload: `code\nretryable\nmessage`. An absent or
                // unrecognized retryable line (older peers) means final.
                let text = response.text();
                let (code, rest) = text.split_once('\n').unwrap_or((text.as_str(), ""));
                let (retryable, message) = rest.split_once('\n').unwrap_or((rest, ""));
                Err(ClientError::Server {
                    code: code.to_string(),
                    retryable: retryable == "retry",
                    message: message.to_string(),
                })
            }
            tag::BUSY => {
                let text = response.text();
                let (scope, message) = text.split_once('\n').unwrap_or((text.as_str(), ""));
                Err(ClientError::Busy {
                    scope: scope.to_string(),
                    message: message.to_string(),
                })
            }
            _ => Ok(response),
        }
    }

    fn expect(&mut self, tag: u8, payload: &[u8], want: u8) -> Result<RawResponse, ClientError> {
        let response = self.call(tag, payload)?;
        if response.tag != want {
            return Err(ClientError::Protocol(format!(
                "expected response tag 0x{want:02x}, got 0x{:02x}",
                response.tag
            )));
        }
        Ok(response)
    }

    /// Opens a document; when `content` is given and the document does not
    /// exist yet, creates it from that XML.
    pub fn open(&mut self, doc: &str, content: Option<&str>) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", content.unwrap_or(""));
        Ok(self.expect(tag::OPEN, payload.as_bytes(), tag::OK)?.text())
    }

    /// Evaluates a tree-pattern query; answers come back merged with exact
    /// probabilities, all computed against one immutable snapshot.
    pub fn query(&mut self, doc: &str, pattern: &str) -> Result<RemoteAnswers, ClientError> {
        let payload = format!("{doc}\n{pattern}");
        let response = self.expect(tag::QUERY, payload.as_bytes(), tag::ANSWERS)?;
        parse_answers(&response.text())
    }

    /// Synchronous commit: returns once the batch is durable.
    pub fn commit(
        &mut self,
        doc: &str,
        batch: &[UpdateTransaction],
    ) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", serialize_batch(batch));
        Ok(self
            .expect(tag::COMMIT, payload.as_bytes(), tag::OK)?
            .text())
    }

    /// Asynchronous commit: returns at enqueue (the logical commit — later
    /// reads see the batch), durability arrives with the group-commit
    /// window and is reported in the [`Client::close`] summary.
    pub fn commit_async(
        &mut self,
        doc: &str,
        batch: &[UpdateTransaction],
    ) -> Result<String, ClientError> {
        let payload = format!("{doc}\n{}", serialize_batch(batch));
        Ok(self
            .expect(tag::COMMIT_ASYNC, payload.as_bytes(), tag::ACCEPTED)?
            .text())
    }

    /// Pins and fetches the document's current snapshot — never blocked by
    /// writers — as `(commit sequence number, fuzzy tree)`.
    pub fn snapshot(&mut self, doc: &str) -> Result<(u64, FuzzyTree), ClientError> {
        let response = self.expect(tag::SNAPSHOT, doc.as_bytes(), tag::SNAPSHOT_DATA)?;
        let text = response.text();
        let (seq, prxml) = text
            .split_once('\n')
            .ok_or_else(|| ClientError::Protocol("snapshot frame missing seq line".into()))?;
        let seq: u64 = seq
            .trim()
            .parse()
            .map_err(|_| ClientError::Protocol(format!("bad snapshot seq `{seq}`")))?;
        let fuzzy = parse_fuzzy_document(prxml)
            .map_err(|err| ClientError::Protocol(format!("bad snapshot payload: {err}")))?;
        Ok((seq, fuzzy))
    }

    /// Runs the simplification pass over a document.
    pub fn simplify(&mut self, doc: &str) -> Result<String, ClientError> {
        Ok(self.expect(tag::SIMPLIFY, doc.as_bytes(), tag::OK)?.text())
    }

    /// Tenant-level warehouse counters. Never shed by admission control,
    /// but answers only for tenants already resident server-side — a
    /// never-touched (or evicted) tenant gets a typed `not-resident`
    /// error instead of being lazily opened.
    pub fn stats(&mut self) -> Result<RemoteStats, ClientError> {
        let response = self.expect(tag::STATS, b"", tag::STATS_DATA)?;
        parse_stats(&response.text())
    }

    /// Drains this connection's pending async commits server-side and
    /// returns the drain summary. The connection is unusable afterwards.
    pub fn close(&mut self) -> Result<String, ClientError> {
        Ok(self.expect(tag::CLOSE, b"", tag::OK)?.text())
    }
}

/// Capped exponential backoff with seeded jitter for transient failures
/// ([`ClientError::is_transient`]): `Busy` sheds, server errors marked
/// retryable, socket timeouts.
///
/// Attempt `n` (0-based) sleeps `min(cap, base · 2ⁿ) · j` where `j` is
/// uniform in `[0.5, 1.0)` from a deterministic generator — seeded jitter
/// keeps a fleet of clients from re-converging on the same retry instant
/// while staying reproducible in tests and the harness.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries = 3` means at most
    /// 4 attempts).
    pub max_retries: usize,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on any single backoff sleep (pre-jitter).
    pub cap: Duration,
    /// Jitter seed; two policies with the same seed sleep identically.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 4 retries, 25 ms base, 1 s cap.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
            seed: 0x9e3779b97f4a7c15,
        }
    }
}

impl RetryPolicy {
    /// The pre-sleep backoff durations this policy would use, in order —
    /// jittered, deterministic for a given seed. Exposed for tests and for
    /// callers that schedule their own sleeps.
    pub fn backoffs(&self) -> Vec<Duration> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.max_retries)
            .map(|attempt| self.backoff(attempt, &mut rng))
            .collect()
    }

    fn backoff(&self, attempt: usize, rng: &mut StdRng) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32.checked_shl(attempt as u32).unwrap_or(u32::MAX))
            .min(self.cap);
        exp.mul_f64(0.5 + 0.5 * rng.gen::<f64>())
    }

    /// Runs `operation` until it succeeds, fails non-transiently, or the
    /// retry budget is spent (the last error is returned). The closure is
    /// the retry unit: have it dial a fresh [`Client`] when retrying after
    /// timeouts (a timed-out connection is desynchronized — see
    /// [`ClientError::is_transient`]).
    pub fn run<T>(
        &self,
        mut operation: impl FnMut() -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut attempt = 0;
        loop {
            match operation() {
                Ok(value) => return Ok(value),
                Err(error) if error.is_transient() && attempt < self.max_retries => {
                    std::thread::sleep(self.backoff(attempt, &mut rng));
                    attempt += 1;
                }
                Err(error) => return Err(error),
            }
        }
    }
}

fn parse_answers(text: &str) -> Result<RemoteAnswers, ClientError> {
    let mut lines = text.splitn(3, '\n');
    let seq = lines
        .next()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .ok_or_else(|| ClientError::Protocol("answers frame missing seq line".into()))?;
    let selection = lines
        .next()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .ok_or_else(|| ClientError::Protocol("answers frame missing selection line".into()))?;
    let xml = lines
        .next()
        .ok_or_else(|| ClientError::Protocol("answers frame missing XML body".into()))?;
    let document = XmlDocument::parse(xml)
        .map_err(|err| ClientError::Protocol(format!("bad answers XML: {err}")))?;
    let mut answers = Vec::new();
    for child in document.root.child_elements() {
        let probability = child
            .attribute("probability")
            .and_then(|p| p.parse::<f64>().ok())
            .ok_or_else(|| ClientError::Protocol("answer missing probability".into()))?;
        let tree = child
            .child_elements()
            .next()
            .ok_or_else(|| ClientError::Protocol("answer missing its tree".into()))?;
        let mut xml = String::new();
        tree.write_xml(&mut xml, false, 0);
        answers.push(RemoteAnswer { probability, xml });
    }
    Ok(RemoteAnswers {
        seq,
        selection,
        answers,
    })
}

fn parse_stats(text: &str) -> Result<RemoteStats, ClientError> {
    let document = XmlDocument::parse(text)
        .map_err(|err| ClientError::Protocol(format!("bad stats XML: {err}")))?;
    let attr_usize = |name: &str| -> Result<usize, ClientError> {
        document
            .root
            .attribute(name)
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| ClientError::Protocol(format!("stats frame missing `{name}`")))
    };
    let occupancy = document
        .root
        .attribute("mean_window_occupancy")
        .and_then(|v| v.parse::<f64>().ok())
        .ok_or_else(|| {
            ClientError::Protocol("stats frame missing `mean_window_occupancy`".into())
        })?;
    let quarantined: Vec<String> = document
        .root
        .attribute("quarantined")
        .map(|names| {
            names
                .split_whitespace()
                .map(|name| name.to_string())
                .collect()
        })
        .unwrap_or_default();
    Ok(RemoteStats {
        updates_applied: attr_usize("updates_applied")?,
        queries_evaluated: attr_usize("queries_evaluated")?,
        simplifications: attr_usize("simplifications")?,
        checkpoints: attr_usize("checkpoints")?,
        fsyncs: attr_usize("fsyncs")?,
        grouped_commits: attr_usize("grouped_commits")?,
        grouped_windows: attr_usize("grouped_windows")?,
        mean_window_occupancy: occupancy,
        quarantined_docs: attr_usize("quarantined_docs")?,
        quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn retry_policy_backoffs_are_deterministic_capped_and_jittered() {
        let policy = RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(100),
            cap: Duration::from_millis(400),
            seed: 7,
        };
        let first = policy.backoffs();
        assert_eq!(first, policy.backoffs(), "same seed, same sleeps");
        assert_eq!(first.len(), 6);
        for (attempt, backoff) in first.iter().enumerate() {
            let exp = Duration::from_millis(100)
                .saturating_mul(1 << attempt.min(31))
                .min(Duration::from_millis(400));
            // Jitter keeps every sleep in [exp/2, exp).
            assert!(*backoff >= exp / 2 && *backoff < exp, "attempt {attempt}");
        }
        assert_ne!(
            first,
            RetryPolicy { seed: 8, ..policy }.backoffs(),
            "different seeds must not sleep in lockstep"
        );
    }

    #[test]
    fn transient_classification_follows_the_failure_taxonomy() {
        let busy = ClientError::Busy {
            scope: "global".into(),
            message: String::new(),
        };
        let retryable = ClientError::Server {
            code: "quarantined".into(),
            retryable: true,
            message: String::new(),
        };
        let fatal = ClientError::Server {
            code: "unknown-doc".into(),
            retryable: false,
            message: String::new(),
        };
        let timeout = ClientError::Io(io::Error::new(io::ErrorKind::WouldBlock, "timed out"));
        let frame_timeout = ClientError::Frame(FrameError::Io(io::Error::new(
            io::ErrorKind::TimedOut,
            "timed out",
        )));
        let broken = ClientError::Io(io::Error::new(io::ErrorKind::BrokenPipe, "gone"));
        assert!(busy.is_transient());
        assert!(retryable.is_transient());
        assert!(timeout.is_transient());
        assert!(frame_timeout.is_transient());
        assert!(!fatal.is_transient());
        assert!(!broken.is_transient());
    }

    #[test]
    fn run_retries_transients_and_gives_up_on_final_errors() {
        let policy = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            seed: 1,
        };
        // Two sheds, then success.
        let calls = Cell::new(0usize);
        let result = policy.run(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(ClientError::Busy {
                    scope: "tenant".into(),
                    message: String::new(),
                })
            } else {
                Ok(calls.get())
            }
        });
        assert_eq!(result.unwrap(), 3);
        // A final error is returned immediately, no retries.
        let calls = Cell::new(0usize);
        let result: Result<(), ClientError> = policy.run(|| {
            calls.set(calls.get() + 1);
            Err(ClientError::Server {
                code: "bad-name".into(),
                retryable: false,
                message: String::new(),
            })
        });
        assert!(matches!(result, Err(ClientError::Server { .. })));
        assert_eq!(calls.get(), 1);
        // A transient error that never clears exhausts the budget:
        // 1 attempt + max_retries.
        let calls = Cell::new(0usize);
        let result: Result<(), ClientError> = policy.run(|| {
            calls.set(calls.get() + 1);
            Err(ClientError::Busy {
                scope: "global".into(),
                message: String::new(),
            })
        });
        assert!(result.unwrap_err().is_busy());
        assert_eq!(calls.get(), 4);
    }
}
