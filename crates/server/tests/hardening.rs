//! End-to-end failure-hardening battery: an injected fsync failure under a
//! live server must quarantine exactly one document, keep readers and every
//! other tenant serving, surface typed retryable errors on the wire, and
//! heal through the backoff-gated auto-reopen — all observable through
//! `stats` and recoverable with one `RetryPolicy`-wrapped call.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pxml_core::UpdateTransaction;
use pxml_query::Pattern;
use pxml_server::{Client, ClientError, RetryPolicy, Server, ServerConfig};
use pxml_store::{FaultOp, FaultPlan};
use pxml_tree::parse_data_tree;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-server-hardening-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

const PEOPLE_XML: &str =
    "<directory><person><name>alice</name></person><person><name>bob</name></person></directory>";

fn phone_batch(confidence: f64) -> Vec<UpdateTransaction> {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let person = pattern.root();
    vec![UpdateTransaction::new(pattern, confidence)
        .unwrap()
        .with_insert(person, parse_data_tree("<phone>+33-1</phone>").unwrap())]
}

/// The whole taxonomy in one scenario. The fault plan fails the second
/// fsync the tenant backend issues: under the default sync commit policy
/// `create_document` does not enter the fsync-round path, so commit #1
/// succeeds and commit #2 is the one that dies.
#[test]
fn injected_fsync_failure_quarantines_heals_and_retries_over_the_wire() {
    let dir = scratch("quarantine");
    let mut config = ServerConfig::new(&dir);
    config.fs.fault = Some(Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 2)));
    let server = Server::start(config).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();

    client.open("doc", Some(PEOPLE_XML)).unwrap();
    client.commit("doc", &phone_batch(0.8)).unwrap();

    // Commit #2 hits the injected fsync failure: a typed, retryable
    // storage error — and the document is now quarantined.
    let error = client.commit("doc", &phone_batch(0.7)).unwrap_err();
    match &error {
        ClientError::Server {
            code, retryable, ..
        } => {
            assert_eq!(code, "engine", "unexpected error: {error}");
            assert!(retryable, "storage failures must be marked retryable");
        }
        other => panic!("expected a typed server error, got {other:?}"),
    }
    assert!(error.is_transient());

    // `stats` reports the quarantined document by name. (Checked first:
    // stats bypasses dispatch, while any gated request would already
    // trigger the auto-reopen probed below.)
    let stats = client.stats().unwrap();
    assert_eq!(stats.quarantined_docs, 1);
    assert_eq!(stats.quarantined, vec!["doc".to_string()]);

    // One retry-wrapped call heals everything: the attempt hits the
    // backoff-gated auto-reopen (which replays the journal and lifts the
    // quarantine) and the commit then lands. The fault was one-shot, so
    // storage is healthy again.
    let policy = RetryPolicy {
        max_retries: 5,
        base: Duration::from_millis(10),
        cap: Duration::from_millis(100),
        seed: 42,
    };
    let receipt = policy
        .run(|| client.commit("doc", &phone_batch(0.6)))
        .unwrap();
    assert!(receipt.contains("applied=1"), "got: {receipt}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.quarantined_docs, 0);
    assert!(stats.quarantined.is_empty());

    // The rolled-back commit #2 must not have left a phantom. The two
    // surviving inserts (0.8 and 0.6) merge into one phone node with
    // probability 1-(1-0.8)(1-0.6) = 0.92; had the failed 0.7 commit
    // leaked, the probability would be 0.976.
    let answers = client.query("doc", "person { phone }").unwrap();
    assert!(
        (answers.selection - 0.92).abs() < 1e-9,
        "answers: {answers:?}"
    );

    server.shutdown();

    // Cold restart of the tenant: exactly the acked commits replay.
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client.open("doc", None).unwrap();
    let answers = client.query("doc", "person { phone }").unwrap();
    assert!(
        (answers.selection - 0.92).abs() < 1e-9,
        "restart lost or invented a commit: {answers:?}"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A quarantined tenant must not leak into its neighbours: tenant `beta`
/// keeps committing while `alpha` is quarantined.
#[test]
fn quarantine_is_per_document_not_per_server() {
    let dir = scratch("isolation");
    let mut config = ServerConfig::new(&dir);
    // The plan's counters are shared by every tenant backend holding the
    // `Arc`, so the global second fsync fails: that is alpha's second
    // commit (alpha commits twice before beta commits at all below).
    config.fs.fault = Some(Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 2)));
    let server = Server::start(config).unwrap();

    let mut alpha = Client::connect(server.local_addr(), "alpha").unwrap();
    let mut beta = Client::connect(server.local_addr(), "beta").unwrap();
    alpha.open("doc", Some(PEOPLE_XML)).unwrap();
    beta.open("doc", Some(PEOPLE_XML)).unwrap();

    alpha.commit("doc", &phone_batch(0.8)).unwrap();
    assert!(alpha.commit("doc", &phone_batch(0.7)).is_err());

    // Beta's first commit is the plan's third fsync: healthy.
    beta.commit("doc", &phone_batch(0.9)).unwrap();
    let stats = beta.stats().unwrap();
    assert_eq!(stats.quarantined_docs, 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
