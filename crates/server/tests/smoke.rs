//! Client smoke suite: the full verb set end-to-end over real sockets,
//! tenant isolation, persistence across a server restart, async-commit
//! draining, LRU eviction, and admission-control shedding.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pxml_core::UpdateTransaction;
use pxml_query::Pattern;
use pxml_server::{Client, ClientError, Server, ServerConfig};
use pxml_store::CommitPolicy;
use pxml_tree::parse_data_tree;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-server-smoke-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

const PEOPLE_XML: &str =
    "<directory><person><name>alice</name></person><person><name>bob</name></person></directory>";

/// One transaction inserting `<phone>` under alice's `<person>` with the
/// given confidence.
fn phone_batch(confidence: f64) -> Vec<UpdateTransaction> {
    let pattern = Pattern::parse("person { name[=\"alice\"] }").unwrap();
    let person = pattern.root();
    vec![UpdateTransaction::new(pattern, confidence)
        .unwrap()
        .with_insert(person, parse_data_tree("<phone>+33-1</phone>").unwrap())]
}

#[test]
fn full_verb_set_end_to_end() {
    let dir = scratch("verbs");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();

    let opened = client.open("people", Some(PEOPLE_XML)).unwrap();
    assert!(opened.contains("created people"), "got: {opened}");
    // Idempotent: a second open of an existing document succeeds.
    let reopened = client.open("people", None).unwrap();
    assert!(reopened.contains("opened people"), "got: {reopened}");

    let receipt = client.commit("people", &phone_batch(0.8)).unwrap();
    assert!(receipt.contains("applied=1"), "got: {receipt}");

    let answers = client.query("people", "person { phone }").unwrap();
    assert_eq!(answers.answers.len(), 1);
    assert!((answers.answers[0].probability - 0.8).abs() < 1e-9);
    assert!((answers.selection - 0.8).abs() < 1e-9);
    // Answers are the minimal subtree of the mapped pattern nodes.
    assert!(
        answers.answers[0].xml.contains("phone"),
        "got: {}",
        answers.answers[0].xml
    );
    assert!(answers.seq >= 1);

    let (seq, fuzzy) = client.snapshot("people").unwrap();
    assert!(seq >= 1);
    assert!(fuzzy.tree().node_count() > 3);

    let simplified = client.simplify("people").unwrap();
    assert!(simplified.contains("passes="), "got: {simplified}");

    let stats = client.stats().unwrap();
    assert_eq!(stats.updates_applied, 1);
    assert!(stats.queries_evaluated >= 1);
    // Fresh sync-policy tenant: no grouped windows, and the occupancy is an
    // exact 0.0 — never NaN (the zero-windows guard, satellite-tested at
    // the stats source too).
    assert_eq!(stats.grouped_windows, 0);
    assert!(stats.mean_window_occupancy.is_finite());
    assert_eq!(stats.mean_window_occupancy, 0.0);

    let goodbye = client.close().unwrap();
    assert!(goodbye.contains("closed pending=0"), "got: {goodbye}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_document_and_bad_pattern_are_typed_errors() {
    let dir = scratch("typed-errors");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();

    match client.query("nope", "person") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "unknown-doc"),
        other => panic!("expected unknown-doc, got {other:?}"),
    }
    client.open("people", Some(PEOPLE_XML)).unwrap();
    match client.query("people", "person {{{") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "bad-pattern"),
        other => panic!("expected bad-pattern, got {other:?}"),
    }
    // The connection survives typed errors.
    assert!(client.query("people", "person { name }").is_ok());

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenants_are_isolated() {
    let dir = scratch("tenants");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut alpha = Client::connect(server.local_addr(), "alpha").unwrap();
    let mut beta = Client::connect(server.local_addr(), "beta").unwrap();
    alpha
        .open(
            "doc",
            Some("<directory><person><name>alice</name></person></directory>"),
        )
        .unwrap();
    beta.open(
        "doc",
        Some(
            "<directory><person><name>zoe</name></person>\
             <person><name>yuri</name></person></directory>",
        ),
    )
    .unwrap();

    // Same document name, same pattern, different tenants: each sees only
    // its own content (only alpha holds an `alice`; answers are merged
    // minimal subtrees, so the value-tested counts are the isolation
    // proof).
    assert_eq!(
        alpha.query("doc", "person { name }").unwrap().answers.len(),
        1
    );
    assert_eq!(
        beta.query("doc", "person { name }").unwrap().answers.len(),
        1
    );
    assert_eq!(
        alpha
            .query("doc", "person { name[=\"alice\"] }")
            .unwrap()
            .answers
            .len(),
        1
    );
    assert_eq!(
        beta.query("doc", "person { name[=\"alice\"] }")
            .unwrap()
            .answers
            .len(),
        0
    );
    assert_eq!(
        server.resident_tenants(),
        vec!["alpha".to_string(), "beta".to_string()]
    );
    // Tenant-level stats are per-warehouse, not global: alpha ran two
    // queries above, and beta's two don't show up in its count.
    assert_eq!(alpha.stats().unwrap().queries_evaluated, 2);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn documents_persist_across_server_restart() {
    let dir = scratch("restart");
    {
        let server = Server::start(ServerConfig::new(&dir)).unwrap();
        let mut client = Client::connect(server.local_addr(), "acme").unwrap();
        client.open("people", Some(PEOPLE_XML)).unwrap();
        client.commit("people", &phone_batch(0.7)).unwrap();
        client.close().unwrap();
        server.shutdown();
    }
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    // No content: open must find the recovered document.
    client.open("people", None).unwrap();
    let answers = client.query("people", "person { phone }").unwrap();
    assert_eq!(answers.answers.len(), 1);
    assert!((answers.answers[0].probability - 0.7).abs() < 1e-9);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn async_commits_drain_at_close_and_survive_restart() {
    let dir = scratch("async");
    let grouped = {
        let mut config = ServerConfig::new(&dir);
        config.session.commit = CommitPolicy::Grouped {
            window_max_batches: 4,
            window_max_wait: Duration::from_millis(5),
        };
        config
    };
    {
        let server = Server::start(grouped.clone()).unwrap();
        let mut client = Client::connect(server.local_addr(), "acme").unwrap();
        client.open("people", Some(PEOPLE_XML)).unwrap();
        let accepted = client.commit_async("people", &phone_batch(0.9)).unwrap();
        assert!(accepted.contains("applied=1"), "got: {accepted}");
        // The logical commit is immediately visible to reads.
        assert_eq!(
            client
                .query("people", "person { phone }")
                .unwrap()
                .answers
                .len(),
            1
        );
        let goodbye = client.close().unwrap();
        assert!(goodbye.contains("pending=1 failed=0"), "got: {goodbye}");
        server.shutdown();
    }
    // Durability: the drained commit is still there after a cold start.
    let server = Server::start(grouped).unwrap();
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    let answers = client.query("people", "person { phone }").unwrap();
    assert_eq!(answers.answers.len(), 1);
    assert!((answers.answers[0].probability - 0.9).abs() < 1e-9);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lru_evicts_idle_tenants_and_reopens_them() {
    let dir = scratch("lru");
    let mut config = ServerConfig::new(&dir);
    config.max_tenants = 2;
    let server = Server::start(config).unwrap();

    let mut t1 = Client::connect(server.local_addr(), "t1").unwrap();
    t1.open("doc", Some(PEOPLE_XML)).unwrap();
    t1.commit("doc", &phone_batch(0.5)).unwrap();
    let mut t2 = Client::connect(server.local_addr(), "t2").unwrap();
    t2.open("doc", Some(PEOPLE_XML)).unwrap();
    let mut t3 = Client::connect(server.local_addr(), "t3").unwrap();
    t3.open("doc", Some(PEOPLE_XML)).unwrap();

    // t1 was least recently used and idle: evicted.
    let resident = server.resident_tenants();
    assert_eq!(resident.len(), 2, "resident: {resident:?}");
    assert!(
        !resident.contains(&"t1".to_string()),
        "resident: {resident:?}"
    );

    // Touching t1 again lazily re-opens it from storage, data intact.
    let answers = t1.query("doc", "person { phone }").unwrap();
    assert_eq!(answers.answers.len(), 1);
    assert!((answers.answers[0].probability - 0.5).abs() < 1e-9);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A tenant with a request in flight is never an eviction victim, even
/// when it is the LRU-oldest: busyness is judged by `Arc` holders of the
/// tenant entry (which a request takes before it even enters the tenant's
/// admission gate), so the LRU skips it and evicts an unheld tenant
/// instead — and the held tenant's commit lands intact.
#[test]
fn eviction_skips_tenants_held_by_in_flight_requests() {
    let dir = scratch("evict-held");
    let mut config = ServerConfig::new(&dir);
    config.max_tenants = 2;
    // Slow flushes keep the held tenant's commit in flight while other
    // tenants churn the LRU (opening a fresh tenant does not flush, so
    // the churn itself stays fast).
    config.fs.simulated_sync_latency = Duration::from_millis(600);
    let server = Server::start(config).unwrap();
    let addr = server.local_addr();

    let mut held = Client::connect(addr, "held").unwrap();
    held.open("doc", Some(PEOPLE_XML)).unwrap();

    let writer = std::thread::spawn(move || {
        let mut writer = Client::connect(addr, "held").unwrap();
        writer.commit("doc", &phone_batch(0.6)).unwrap();
    });
    // Let the writer get into its 600 ms flush; from here `held` is the
    // LRU-oldest resident tenant but has a request holding it.
    std::thread::sleep(Duration::from_millis(150));

    // Two cheap touches: `idle` becomes resident, then `trigger` pushes
    // the registry over max_tenants. The victim must be `idle` — more
    // recently used than `held`, but unheld.
    let mut idle = Client::connect(addr, "idle").unwrap();
    let _ = idle.open("doc", None);
    let mut trigger = Client::connect(addr, "trigger").unwrap();
    let _ = trigger.open("doc", None);

    let resident = server.resident_tenants();
    assert!(
        resident.contains(&"held".to_string()),
        "held tenant was evicted mid-request; resident: {resident:?}"
    );
    assert!(
        !resident.contains(&"idle".to_string()),
        "expected the unheld tenant to be the victim; resident: {resident:?}"
    );

    writer.join().unwrap();
    let answers = held.query("doc", "person { phone }").unwrap();
    assert_eq!(answers.answers.len(), 1);
    assert!((answers.answers[0].probability - 0.6).abs() < 1e-9);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// `stats` is admission-free, so it must be harmless: a probe for a
/// never-seen tenant is refused with a typed error instead of lazily
/// opening a warehouse — no storage directory, no resident entry, no LRU
/// churn.
#[test]
fn stats_never_lazily_opens_a_tenant() {
    let dir = scratch("stats-resident");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut ghost = Client::connect(server.local_addr(), "ghost").unwrap();
    match ghost.stats() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "not-resident"),
        other => panic!("expected not-resident, got {other:?}"),
    }
    assert!(server.resident_tenants().is_empty());
    assert!(!dir.join("ghost").exists());

    // A gated request makes the tenant resident; stats answers from then
    // on.
    ghost.open("doc", Some(PEOPLE_XML)).unwrap();
    assert_eq!(ghost.stats().unwrap().updates_applied, 0);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn over_budget_requests_get_busy_within_the_admission_timeout() {
    let dir = scratch("busy");
    let mut config = ServerConfig::new(&dir);
    config.tenant_inflight = 1;
    config.admission_timeout = Duration::from_millis(40);
    // Make every sync commit slow enough to hold the tenant budget while
    // the probe runs.
    config.fs.simulated_sync_latency = Duration::from_millis(400);
    let server = Server::start(config).unwrap();

    let mut setup = Client::connect(server.local_addr(), "acme").unwrap();
    setup.open("people", Some(PEOPLE_XML)).unwrap();

    let addr = server.local_addr();
    let writer = std::thread::spawn(move || {
        let mut writer = Client::connect(addr, "acme").unwrap();
        writer.commit("people", &phone_batch(0.8)).unwrap();
    });
    // Give the writer a head start into its 400 ms flush.
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let result = setup.query("people", "person { name }");
    let elapsed = started.elapsed();
    match result {
        Err(err) if err.is_busy() => {}
        other => panic!("expected Busy, got {other:?}"),
    }
    // Shed within the admission timeout (plus loopback slack), not after
    // queuing behind the 400 ms flush.
    assert!(
        elapsed < Duration::from_millis(300),
        "busy took {elapsed:?}, admission timeout is 40ms"
    );

    writer.join().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
