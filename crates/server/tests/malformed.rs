//! Malformed-frame battery: hostile or broken byte streams must get a
//! typed error frame or a dropped connection — never a panic, and never a
//! poisoned tenant warehouse.

use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pxml_server::frame::{read_response, tag, FrameError, DEFAULT_MAX_FRAME_BYTES};
use pxml_server::{Client, Server, ServerConfig};

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn scratch(label: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "pxml-server-malformed-{}-{}-{}",
        std::process::id(),
        label,
        COUNTER.fetch_add(1, Ordering::SeqCst)
    ))
}

/// A correctly framed request, built by hand so tests can also build
/// incorrect ones next to it.
fn raw_request(tag: u8, tenant: &[u8], payload: &[u8]) -> Vec<u8> {
    let len = 1 + 1 + tenant.len() + payload.len();
    let mut frame = Vec::new();
    frame.extend_from_slice(&(len as u32).to_be_bytes());
    frame.push(tag);
    frame.push(tenant.len() as u8);
    frame.extend_from_slice(tenant);
    frame.extend_from_slice(payload);
    frame
}

fn expect_error_code(stream: &mut TcpStream, want: &str) {
    let response = read_response(stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(response.tag, tag::ERROR, "expected an error frame");
    let text = response.text();
    let code = text.split('\n').next().unwrap_or("");
    assert_eq!(code, want, "full error payload: {text}");
}

fn expect_dropped(stream: &mut TcpStream) {
    // The server must close; the read must end in EOF (or a reset), not a
    // response frame and not a hang.
    match read_response(stream, DEFAULT_MAX_FRAME_BYTES) {
        Err(FrameError::Closed) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => {}
        other => panic!("expected the connection to drop, got {other:?}"),
    }
}

/// After each hostile stream, the same tenant must still serve a
/// well-formed client: nothing panicked server-side and no warehouse state
/// was poisoned.
fn assert_tenant_alive(server: &Server) {
    let mut client = Client::connect(server.local_addr(), "acme").unwrap();
    client
        .open(
            "health",
            Some("<directory><person><name>alice</name></person></directory>"),
        )
        .unwrap();
    let answers = client.query("health", "person { name }").unwrap();
    assert_eq!(answers.answers.len(), 1);
}

#[test]
fn truncated_length_prefix_drops_the_connection() {
    let dir = scratch("truncated-prefix");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Two of the four length bytes, then goodbye.
    stream.write_all(&[0x00, 0x01]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    expect_dropped(&mut stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_declared_length_gets_typed_error_then_drop() {
    let dir = scratch("oversized");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Declares a 4 GiB frame; the server must refuse before allocating.
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    stream.write_all(&[tag::OPEN]).unwrap();
    expect_error_code(&mut stream, "malformed");
    expect_dropped(&mut stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_frame_gets_typed_error_then_drop() {
    let dir = scratch("zero-length");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(&0u32.to_be_bytes()).unwrap();
    expect_error_code(&mut stream, "malformed");
    expect_dropped(&mut stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_tag_gets_typed_error_and_connection_survives() {
    let dir = scratch("unknown-tag");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&raw_request(0x7F, b"acme", b"whatever"))
        .unwrap();
    expect_error_code(&mut stream, "unknown-tag");
    // Framing was intact, so the connection stays usable: a valid open
    // (which makes the tenant resident) and then a stats request on the
    // same stream must both answer.
    stream
        .write_all(&raw_request(tag::OPEN, b"acme", b"doc\n<doc/>"))
        .unwrap();
    let response = read_response(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(response.tag, tag::OK);
    stream
        .write_all(&raw_request(tag::STATS, b"acme", b""))
        .unwrap();
    let response = read_response(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(response.tag, tag::STATS_DATA);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_frame_disconnect_is_survived() {
    let dir = scratch("mid-frame");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Declares 100 bytes, delivers 10, disconnects.
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[tag::COMMIT]).unwrap();
    stream.write_all(b"012345678").unwrap();
    drop(stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tenant_header_past_frame_end_gets_typed_error_then_drop() {
    let dir = scratch("bad-header");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // A 3-byte frame whose header declares a 200-byte tenant id.
    let mut frame = Vec::new();
    frame.extend_from_slice(&3u32.to_be_bytes());
    frame.push(tag::OPEN);
    frame.push(200);
    frame.push(b'x');
    stream.write_all(&frame).unwrap();
    expect_error_code(&mut stream, "malformed");
    expect_dropped(&mut stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn non_utf8_tenant_gets_typed_error_then_drop() {
    let dir = scratch("bad-utf8");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&raw_request(tag::OPEN, &[0xFF, 0xFE], b"doc\n"))
        .unwrap();
    expect_error_code(&mut stream, "malformed");
    expect_dropped(&mut stream);

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bad_tenant_and_bad_doc_names_are_typed_errors_on_a_live_connection() {
    let dir = scratch("bad-names");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // Path traversal in the tenant id must never reach the file system.
    stream
        .write_all(&raw_request(tag::OPEN, b"../escape", b"doc\n<doc/>"))
        .unwrap();
    expect_error_code(&mut stream, "bad-tenant");
    stream
        .write_all(&raw_request(
            tag::OPEN,
            b"acme",
            b"../../etc/passwd\n<doc/>",
        ))
        .unwrap();
    expect_error_code(&mut stream, "bad-name");
    // Garbage XML payload: typed error, connection stays usable.
    stream
        .write_all(&raw_request(tag::OPEN, b"acme", b"doc\n<unclosed"))
        .unwrap();
    expect_error_code(&mut stream, "bad-payload");
    stream
        .write_all(&raw_request(tag::STATS, b"acme", b""))
        .unwrap();
    let response = read_response(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(response.tag, tag::STATS_DATA);
    // Nothing escaped the storage root.
    assert!(!dir.join("..").join("escape").exists());

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_client_frame_is_capped_by_config() {
    let dir = scratch("cap");
    let mut config = ServerConfig::new(&dir);
    config.max_frame_bytes = 256;
    let server = Server::start(config).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // 300 declared > 256 cap: refused even though it is a "real" frame.
    stream
        .write_all(&raw_request(tag::OPEN, b"acme", &vec![b'x'; 300 - 6]))
        .unwrap();
    expect_error_code(&mut stream, "malformed");
    expect_dropped(&mut stream);

    // A small frame fits under the cap on a fresh connection.
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(&raw_request(tag::OPEN, b"acme", b"doc\n<doc/>"))
        .unwrap();
    let response = read_response(&mut stream, DEFAULT_MAX_FRAME_BYTES).unwrap();
    assert_eq!(response.tag, tag::OK);

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A peer that connects and then says nothing must be reaped by the idle
/// read deadline — handler threads and socket buffers are not pinned
/// forever by silent clients. Same for a peer that stalls mid-frame.
#[test]
fn silent_and_stalled_clients_are_reaped_by_the_idle_deadline() {
    let dir = scratch("idle-reap");
    let mut config = ServerConfig::new(&dir);
    config.idle_timeout = Duration::from_millis(150);
    let server = Server::start(config).unwrap();

    // Fully silent peer: never sends a byte.
    let mut silent = TcpStream::connect(server.local_addr()).unwrap();
    // Stalled peer: half a length prefix, then nothing.
    let mut stalled = TcpStream::connect(server.local_addr()).unwrap();
    stalled.write_all(&[0x00, 0x00]).unwrap();

    let start = Instant::now();
    expect_dropped(&mut silent);
    expect_dropped(&mut stalled);
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100),
        "reaped suspiciously early ({elapsed:?}) — deadline not in effect?"
    );
    assert!(
        elapsed < Duration::from_secs(10),
        "reap took {elapsed:?}; the idle deadline is not being enforced"
    );

    // The reap was clean: the same server keeps serving well-formed
    // clients.
    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Mid-frame disconnects while real work is interleaved: the classic
/// "poisoning" vector. Ten hostile streams race ten healthy commits; at
/// the end the document must answer with everything the healthy clients
/// committed.
#[test]
fn hostile_streams_do_not_poison_concurrent_tenants() {
    let dir = scratch("poison-race");
    let server = Server::start(ServerConfig::new(&dir)).unwrap();
    let addr = server.local_addr();

    let mut setup = Client::connect(addr, "acme").unwrap();
    setup
        .open(
            "doc",
            Some("<directory><person><name>alice</name></person></directory>"),
        )
        .unwrap();

    std::thread::scope(|scope| {
        for _ in 0..10 {
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let _ = stream.write_all(&997u32.to_be_bytes());
                let _ = stream.write_all(&[tag::COMMIT, 4]);
                let _ = stream.write_all(b"acme partial");
                drop(stream);
            });
            scope.spawn(move || {
                let mut client = Client::connect(addr, "acme").unwrap();
                let answers = client.query("doc", "person { name }").unwrap();
                assert_eq!(answers.answers.len(), 1);
            });
        }
    });

    assert_tenant_alive(&server);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
