//! The experiment harness: re-runs every experiment E1–E15 plus the served
//! E17 request-rate sweep and the E18 chaos sweep (each described at its
//! section below) and prints paper-style result tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p pxml-bench --bin harness               # all experiments
//! cargo run --release -p pxml-bench --bin harness e3 e5         # a selection
//! cargo run --release -p pxml-bench --bin harness -- --quick    # smaller sweeps
//! cargo run --release -p pxml-bench --bin harness quick e3      # ditto, no `--` needed
//! cargo run --release -p pxml-bench --bin harness -- --json benchmarks
//! ```
//!
//! `--json <dir>` additionally writes one `BENCH_E<n>.json` file per
//! experiment that ran — the machine-readable perf trajectory CI archives
//! (and `benchmarks/` commits). Quick mode is also enabled by setting
//! `PXML_HARNESS_QUICK=1`.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use pxml_bench::{
    cleaning_history, deletion_growth_document, deletion_growth_step, document, fuzzy_document,
    insert_update_for, merged_answer_document, query_for, slide12, update_for, BENCH_SEED,
};
use pxml_core::{encode_possible_worlds, FuzzyTree, Simplifier, SimplifyPolicy, UpdateTransaction};
use pxml_event::Formula;
use pxml_gen::concurrent::{
    concurrent_workload, initial_document, ConcurrentWorkloadConfig, DocumentWorkload, WorkloadOp,
};
use pxml_gen::scenarios::{extraction_update, people_directory, PeopleScenarioConfig};
use pxml_gen::storage::journal_batches;
use pxml_query::{MatchStrategy, Pattern};
use pxml_server::{Client, Server, ServerConfig};
use pxml_store::{
    CommitPolicy, FaultOp, FaultPlan, FsBackend, FsOptions, MemBackend, StorageBackend,
};
use pxml_tree::parse_data_tree;
use pxml_warehouse::{CompactionPolicy, Session, SessionConfig, Warehouse};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut json_dir: Option<PathBuf> = None;
    let mut words: Vec<String> = Vec::new();
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--json" {
            let dir = raw
                .next()
                .filter(|d| !d.starts_with("--"))
                .unwrap_or_else(|| {
                    eprintln!("--json requires a directory argument");
                    std::process::exit(2);
                });
            json_dir = Some(PathBuf::from(dir));
        } else {
            words.push(arg.to_lowercase());
        }
    }
    let quick = words.iter().any(|a| a == "--quick" || a == "quick")
        || std::env::var("PXML_HARNESS_QUICK")
            .is_ok_and(|v| !matches!(v.trim(), "" | "0" | "false" | "off"));
    let selected: Vec<String> = words
        .iter()
        .filter(|a| !a.starts_with("--") && *a != "quick")
        .cloned()
        .collect();
    let want = |name: &str| selected.is_empty() || selected.iter().any(|s| s == name);

    println!("pxml experiment harness (quick = {quick})");
    println!("=========================================\n");
    type Experiment = fn(bool, &mut Report);
    let experiments: [(&str, Experiment); 17] = [
        ("e1", e1_possible_worlds_example),
        ("e2", e2_expressiveness),
        ("e3", e3_query_models),
        ("e4", e4_updates),
        ("e5", e5_deletion_growth),
        ("e6", e6_conditional_replacement),
        ("e7", e7_warehouse),
        ("e8", e8_simplification),
        ("e9", e9_query_scaling),
        ("e10", e10_complexity_summary),
        ("e11", e11_concurrent_engine),
        ("e12", e12_commit_latency_vs_journal),
        ("e13", e13_bdd_vs_shannon),
        ("e14", e14_group_commit),
        ("e15", e15_snapshot_reads),
        ("e17", e17_request_rate),
        ("e18", e18_chaos_sweep),
    ];
    for (name, body) in experiments {
        if !want(name) {
            continue;
        }
        let mut report = Report::new(name, quick);
        body(quick, &mut report);
        if let Some(dir) = &json_dir {
            report.write_to(dir);
        }
    }
}

// ---------------------------------------------------------------------------
// The JSON trajectory sink (`--json <dir>`).
// ---------------------------------------------------------------------------

/// A JSON scalar — the offline build has no serde, and scalar rows are all
/// the trajectory needs.
#[derive(Debug, Clone)]
enum Json {
    Int(i64),
    Num(f64),
    Str(String),
    Bool(bool),
}

impl Json {
    fn render(&self, out: &mut String) {
        match self {
            Json::Int(value) => out.push_str(&value.to_string()),
            Json::Num(value) if value.is_finite() => out.push_str(&value.to_string()),
            Json::Num(_) => out.push_str("null"),
            Json::Bool(value) => out.push_str(if *value { "true" } else { "false" }),
            Json::Str(value) => {
                out.push('"');
                for ch in value.chars() {
                    match ch {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
        }
    }
}

impl From<i64> for Json {
    fn from(value: i64) -> Self {
        Json::Int(value)
    }
}

impl From<usize> for Json {
    fn from(value: usize) -> Self {
        Json::Int(value as i64)
    }
}

impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::Int(value as i64)
    }
}

impl From<u32> for Json {
    fn from(value: u32) -> Self {
        Json::Int(value as i64)
    }
}

impl From<i32> for Json {
    fn from(value: i32) -> Self {
        Json::Int(value as i64)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Num(value)
    }
}

impl From<bool> for Json {
    fn from(value: bool) -> Self {
        Json::Bool(value)
    }
}

impl From<&str> for Json {
    fn from(value: &str) -> Self {
        Json::Str(value.to_string())
    }
}

impl From<String> for Json {
    fn from(value: String) -> Self {
        Json::Str(value)
    }
}

/// One result row: `(field, value)` pairs in column order.
type JsonRow = Vec<(String, Json)>;

/// Collects one experiment's results as named tables of field/value rows and
/// serializes them to `BENCH_<EXPERIMENT>.json`.
struct Report {
    experiment: String,
    quick: bool,
    /// `(table, rows)` in insertion order.
    tables: Vec<(String, Vec<JsonRow>)>,
}

impl Report {
    fn new(experiment: &str, quick: bool) -> Self {
        Report {
            experiment: experiment.to_string(),
            quick,
            tables: Vec::new(),
        }
    }

    /// Appends one row to `table` (created on first use).
    fn row(&mut self, table: &str, fields: &[(&str, Json)]) {
        let owned: JsonRow = fields
            .iter()
            .map(|(name, value)| (name.to_string(), value.clone()))
            .collect();
        match self.tables.iter_mut().find(|(name, _)| name == table) {
            Some((_, rows)) => rows.push(owned),
            None => self.tables.push((table.to_string(), vec![owned])),
        }
    }

    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"experiment\": \"{}\",\n  \"quick\": {},\n  \"tables\": {{\n",
            self.experiment, self.quick
        ));
        for (t, (table, rows)) in self.tables.iter().enumerate() {
            out.push_str(&format!("    \"{table}\": [\n"));
            for (r, row) in rows.iter().enumerate() {
                out.push_str("      {");
                for (f, (field, value)) in row.iter().enumerate() {
                    if f > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{field}\": "));
                    value.render(&mut out);
                }
                out.push('}');
                out.push_str(if r + 1 < rows.len() { ",\n" } else { "\n" });
            }
            out.push_str("    ]");
            out.push_str(if t + 1 < self.tables.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  }\n}\n");
        out
    }

    fn write_to(&self, dir: &PathBuf) {
        if let Err(error) = std::fs::create_dir_all(dir) {
            eprintln!("--json: cannot create {}: {error}", dir.display());
            return;
        }
        let path = dir.join(format!("BENCH_{}.json", self.experiment.to_uppercase()));
        if let Err(error) = std::fs::write(&path, self.render()) {
            eprintln!("--json: cannot write {}: {error}", path.display());
        } else {
            println!("[--json] wrote {}", path.display());
        }
    }
}

/// Runs `body` a few times and reports the median wall-clock time.
fn time_it(repetitions: usize, mut body: impl FnMut()) -> Duration {
    let mut samples = Vec::with_capacity(repetitions);
    for _ in 0..repetitions {
        let start = Instant::now();
        body();
        samples.push(start.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

fn ms(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e3
}

fn header(id: &str, title: &str) {
    println!("----------------------------------------------------------------");
    println!("{id}: {title}");
    println!("----------------------------------------------------------------");
}

// ---------------------------------------------------------------------------
// E1 — slide 9.
// ---------------------------------------------------------------------------

fn e1_possible_worlds_example(_quick: bool, report: &mut Report) {
    header("E1", "possible-worlds example (slide 9)");
    let worlds = pxml_core::PossibleWorlds::from_worlds(vec![
        (parse_data_tree("<A><C/></A>").unwrap(), 0.06),
        (parse_data_tree("<A><C/><D/></A>").unwrap(), 0.14),
        (parse_data_tree("<A><B/><C/></A>").unwrap(), 0.24),
        (parse_data_tree("<A><B/><C/><D/></A>").unwrap(), 0.56),
    ])
    .unwrap();
    println!("{:<28} {:>12} {:>12}", "world", "paper P", "measured P");
    for (xml, expected) in [
        ("<A><C/></A>", 0.06),
        ("<A><C/><D/></A>", 0.14),
        ("<A><B/><C/></A>", 0.24),
        ("<A><B/><C/><D/></A>", 0.56),
    ] {
        let tree = parse_data_tree(xml).unwrap();
        let measured = worlds.probability_of_tree(&tree);
        println!("{xml:<28} {expected:>12.2} {measured:>12.2}");
        report.row(
            "worlds",
            &[
                ("world", xml.into()),
                ("paper_p", expected.into()),
                ("measured_p", measured.into()),
            ],
        );
    }
    println!("total probability: {:.6}\n", worlds.total_probability());
    report.row(
        "summary",
        &[("total_probability", worlds.total_probability().into())],
    );
}

// ---------------------------------------------------------------------------
// E2 — slide 12 + expressiveness.
// ---------------------------------------------------------------------------

fn e2_expressiveness(quick: bool, report: &mut Report) {
    header("E2", "fuzzy-tree semantics and expressiveness (slide 12)");
    let fuzzy = slide12();
    let worlds = fuzzy.to_possible_worlds().unwrap();
    println!("{:<22} {:>12} {:>12}", "world", "paper P", "measured P");
    for (xml, expected) in [
        ("<A><C/></A>", 0.06),
        ("<A><C/><D/></A>", 0.70),
        ("<A><B/><C/></A>", 0.24),
    ] {
        let tree = parse_data_tree(xml).unwrap();
        let measured = worlds.probability_of_tree(&tree);
        println!("{xml:<22} {expected:>12.2} {measured:>12.2}");
        report.row(
            "worlds",
            &[
                ("world", xml.into()),
                ("paper_p", expected.into()),
                ("measured_p", measured.into()),
            ],
        );
    }
    let encoded = encode_possible_worlds(&worlds).unwrap();
    let round_trip = encoded
        .to_possible_worlds()
        .unwrap()
        .equivalent(&worlds, 1e-9);
    println!("round trip PW -> fuzzy -> PW equivalent: {round_trip}");
    report.row("summary", &[("round_trip_equivalent", round_trip.into())]);

    // Expansion cost vs number of events (the exponential the fuzzy-tree
    // representation avoids paying until asked).
    let max_events = if quick { 10 } else { 14 };
    println!("\n{:>8} {:>10} {:>14}", "events", "worlds", "expand (ms)");
    for events in (2..=max_events).step_by(2) {
        let fuzzy = fuzzy_document(40, events, BENCH_SEED + events as u64);
        let mut world_count = 0;
        let elapsed = time_it(3, || {
            world_count = fuzzy.to_possible_worlds().unwrap().len();
        });
        println!("{events:>8} {world_count:>10} {:>14.3}", ms(elapsed));
        report.row(
            "expansion",
            &[
                ("events", events.into()),
                ("worlds", world_count.into()),
                ("expand_ms", ms(elapsed).into()),
            ],
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E3 — query on fuzzy trees vs on possible worlds.
// ---------------------------------------------------------------------------

fn e3_query_models(quick: bool, report: &mut Report) {
    header(
        "E3",
        "query commutation and fuzzy-vs-possible-worlds query cost (slide 13)",
    );
    let max_events = if quick { 10 } else { 14 };
    println!(
        "{:>8} {:>10} {:>16} {:>16} {:>10}",
        "events", "worlds", "fuzzy qry (ms)", "worlds qry (ms)", "agree"
    );
    for events in (2..=max_events).step_by(2) {
        let fuzzy = fuzzy_document(60, events, BENCH_SEED + 100 + events as u64);
        let query = query_for(fuzzy.tree(), 3, BENCH_SEED + events as u64);
        let mut fuzzy_answers = 0;
        let fuzzy_time = time_it(3, || {
            fuzzy_answers = fuzzy.query(&query).len();
        });
        let mut world_count = 0;
        let worlds_time = time_it(3, || {
            let worlds = fuzzy.to_possible_worlds().unwrap();
            world_count = worlds.len();
            let _ = worlds.query(&query);
        });
        let agree = {
            let via_fuzzy = fuzzy.query(&query).as_possible_worlds(fuzzy.events());
            let via_worlds = fuzzy.to_possible_worlds().unwrap().query(&query);
            via_fuzzy.equivalent(&via_worlds, 1e-9)
        };
        println!(
            "{events:>8} {world_count:>10} {:>16.3} {:>16.3} {agree:>10}",
            ms(fuzzy_time),
            ms(worlds_time)
        );
        report.row(
            "models",
            &[
                ("events", events.into()),
                ("worlds", world_count.into()),
                ("fuzzy_query_ms", ms(fuzzy_time).into()),
                ("worlds_query_ms", ms(worlds_time).into()),
                ("agree", agree.into()),
            ],
        );
        let _ = fuzzy_answers;
    }

    println!("\nfuzzy query cost vs document size (events fixed at 8):");
    println!("{:>10} {:>16}", "elements", "fuzzy qry (ms)");
    let sizes: &[usize] = if quick {
        &[100, 400, 1600]
    } else {
        &[100, 400, 1600, 6400]
    };
    for &size in sizes {
        let fuzzy = fuzzy_document(size, 8, BENCH_SEED + size as u64);
        let query = query_for(fuzzy.tree(), 3, BENCH_SEED + 7);
        let elapsed = time_it(3, || {
            let _ = fuzzy.query(&query);
        });
        println!("{size:>10} {:>16.3}", ms(elapsed));
        report.row(
            "scaling",
            &[
                ("elements", size.into()),
                ("fuzzy_query_ms", ms(elapsed).into()),
            ],
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E4 — probabilistic updates.
// ---------------------------------------------------------------------------

fn e4_updates(quick: bool, report: &mut Report) {
    header(
        "E4",
        "probabilistic updates: insertion cost and commutation (slide 14)",
    );
    let sizes: &[usize] = if quick {
        &[100, 400, 1600]
    } else {
        &[100, 400, 1600, 6400]
    };
    println!(
        "{:>10} {:>18} {:>18}",
        "elements", "insert tx (ms)", "mixed tx (ms)"
    );
    for &size in sizes {
        let tree = document(size, BENCH_SEED + size as u64);
        let insert = insert_update_for(&tree, BENCH_SEED + 1);
        let mixed = update_for(&tree, BENCH_SEED + 2);
        let insert_time = time_it(3, || {
            let mut fuzzy = FuzzyTree::from_tree(tree.clone());
            insert.apply_to_fuzzy(&mut fuzzy).unwrap();
        });
        let mixed_time = time_it(3, || {
            let mut fuzzy = FuzzyTree::from_tree(tree.clone());
            mixed.apply_to_fuzzy(&mut fuzzy).unwrap();
        });
        println!(
            "{size:>10} {:>18.3} {:>18.3}",
            ms(insert_time),
            ms(mixed_time)
        );
        report.row(
            "updates",
            &[
                ("elements", size.into()),
                ("insert_tx_ms", ms(insert_time).into()),
                ("mixed_tx_ms", ms(mixed_time).into()),
            ],
        );
    }

    // Commutation spot check on small instances.
    let mut agreements = 0;
    let total = 10;
    for seed in 0..total {
        let fuzzy = fuzzy_document(15, 4, BENCH_SEED + 300 + seed);
        let update = update_for(fuzzy.tree(), BENCH_SEED + 400 + seed);
        let via_worlds = fuzzy.to_possible_worlds().unwrap().update(&update);
        let mut updated = fuzzy.clone();
        update.apply_to_fuzzy(&mut updated).unwrap();
        if via_worlds.equivalent(&updated.to_possible_worlds().unwrap(), 1e-9) {
            agreements += 1;
        }
    }
    println!("\nupdate commutation diagram holds on {agreements}/{total} random instances\n");
    report.row(
        "commutation",
        &[("agreements", agreements.into()), ("total", total.into())],
    );
}

// ---------------------------------------------------------------------------
// E5 — deletion-induced growth.
// ---------------------------------------------------------------------------

fn e5_deletion_growth(quick: bool, report: &mut Report) {
    header(
        "E5",
        "exponential growth under conditional deletions (slide 14)",
    );
    let rounds = if quick { 8 } else { 10 };
    println!(
        "{:>8} {:>14} {:>14} {:>20} {:>20}",
        "round", "copies of C", "nodes", "nodes (simplified)", "literals (simpl.)"
    );
    let mut raw = deletion_growth_document(rounds);
    let mut simplified = deletion_growth_document(rounds);
    for k in 1..=rounds {
        deletion_growth_step(k).apply_to_fuzzy(&mut raw).unwrap();
        deletion_growth_step(k)
            .apply_to_fuzzy(&mut simplified)
            .unwrap();
        Simplifier::new().run(&mut simplified).unwrap();
        println!(
            "{k:>8} {:>14} {:>14} {:>20} {:>20}",
            raw.tree().find_elements("C").len(),
            raw.node_count(),
            simplified.node_count(),
            simplified.condition_literal_count()
        );
        report.row(
            "growth",
            &[
                ("round", k.into()),
                ("copies_of_c", raw.tree().find_elements("C").len().into()),
                ("nodes", raw.node_count().into()),
                ("nodes_simplified", simplified.node_count().into()),
                (
                    "literals_simplified",
                    simplified.condition_literal_count().into(),
                ),
            ],
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E6 — conditional replacement (slide 15).
// ---------------------------------------------------------------------------

fn e6_conditional_replacement(_quick: bool, report: &mut Report) {
    header("E6", "conditional replacement example (slide 15)");
    let mut fuzzy = FuzzyTree::new("A");
    let w1 = fuzzy.add_event("w1", 0.8).unwrap();
    let w2 = fuzzy.add_event("w2", 0.7).unwrap();
    let root = fuzzy.root();
    let b = fuzzy.add_element(root, "B");
    fuzzy
        .set_condition(
            b,
            pxml_event::Condition::from_literal(pxml_event::Literal::pos(w1)),
        )
        .unwrap();
    let c = fuzzy.add_element(root, "C");
    fuzzy
        .set_condition(
            c,
            pxml_event::Condition::from_literal(pxml_event::Literal::pos(w2)),
        )
        .unwrap();
    let pattern = Pattern::parse("/A { B, C }").unwrap();
    let ids: Vec<_> = pattern.node_ids().collect();
    let tx = UpdateTransaction::new(pattern, 0.9)
        .unwrap()
        .with_insert(ids[0], parse_data_tree("<D/>").unwrap())
        .with_delete(ids[2]);
    tx.apply_to_fuzzy(&mut fuzzy).unwrap();

    println!(
        "{:<10} {:<30}",
        "node", "condition (paper: B[w1], C[!w1 w2], C[w1 w2 !w3], D[w1 w2 w3])"
    );
    for node in fuzzy.tree().nodes() {
        if node == fuzzy.root() {
            continue;
        }
        let label = fuzzy.tree().label(node).as_str().to_string();
        let condition = fuzzy.condition(node).display(fuzzy.events());
        println!("{label:<10} {condition:<30}");
        report.row(
            "conditions",
            &[("node", label.into()), ("condition", condition.into())],
        );
    }
    println!("{}", fuzzy.events());
}

// ---------------------------------------------------------------------------
// E7 — warehouse end-to-end throughput.
// ---------------------------------------------------------------------------

fn e7_warehouse(quick: bool, report: &mut Report) {
    header(
        "E7",
        "warehouse architecture: update/query throughput and recovery (slides 3, 16)",
    );
    let sizes: &[usize] = if quick { &[50, 200] } else { &[50, 200, 1000] };
    let updates = if quick { 100 } else { 200 };
    let queries = 50;
    println!(
        "{:>10} {:>12} {:>14} {:>14} {:>14}",
        "people", "updates", "updates/s", "queries/s", "recover (ms)"
    );
    for &people in sizes {
        let dir =
            std::env::temp_dir().join(format!("pxml-harness-e7-{}-{}", std::process::id(), people));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::open(
            &dir,
            SessionConfig {
                simplify: SimplifyPolicy::Threshold(4096),
                compaction: CompactionPolicy::EveryNBatches(64),
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let scenario = PeopleScenarioConfig {
            people,
            ..PeopleScenarioConfig::default()
        };
        let doc = session
            .create("people", people_directory(&scenario))
            .unwrap();

        let mut rng = StdRng::seed_from_u64(BENCH_SEED + people as u64);
        let start = Instant::now();
        for _ in 0..updates {
            let (update, _) = extraction_update(&mut rng, &scenario);
            doc.begin().stage(update).commit().unwrap();
        }
        let update_rate = updates as f64 / start.elapsed().as_secs_f64();

        let patterns = [
            Pattern::parse("person { phone }").unwrap(),
            Pattern::parse("person { email }").unwrap(),
            Pattern::parse("person { name, city }").unwrap(),
        ];
        let start = Instant::now();
        for i in 0..queries {
            let _ = doc.query(&patterns[i % patterns.len()]).unwrap();
        }
        let query_rate = queries as f64 / start.elapsed().as_secs_f64();

        drop(doc);
        drop(session);
        let start = Instant::now();
        let reopened = Session::open(&dir, SessionConfig::default()).unwrap();
        let recovery = start.elapsed();
        let _ = reopened.document("people").unwrap();

        println!(
            "{people:>10} {updates:>12} {update_rate:>14.1} {query_rate:>14.1} {:>14.2}",
            ms(recovery)
        );
        report.row(
            "throughput",
            &[
                ("people", people.into()),
                ("updates", updates.into()),
                ("updates_per_s", update_rate.into()),
                ("queries_per_s", query_rate.into()),
                ("recover_ms", ms(recovery).into()),
            ],
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
}

// ---------------------------------------------------------------------------
// E8 — simplification effectiveness.
// ---------------------------------------------------------------------------

fn e8_simplification(quick: bool, report: &mut Report) {
    header("E8", "fuzzy-data simplification (slide 19 perspective)");
    let histories = if quick { 40 } else { 120 };
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>14}",
        "updates", "nodes", "nodes'", "literals", "literals'", "simplify (ms)"
    );
    for &updates in &[histories / 2, histories] {
        let mut fuzzy = FuzzyTree::from_tree(people_directory(&PeopleScenarioConfig {
            people: 20,
            ..PeopleScenarioConfig::default()
        }));
        let scenario = PeopleScenarioConfig {
            people: 20,
            ..PeopleScenarioConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(BENCH_SEED + updates as u64);
        for _ in 0..updates {
            let (update, _) = extraction_update(&mut rng, &scenario);
            update.apply_to_fuzzy(&mut fuzzy).unwrap();
        }
        let nodes_before = fuzzy.node_count();
        let literals_before = fuzzy.condition_literal_count();
        let mut simplified = fuzzy.clone();
        let elapsed = time_it(3, || {
            simplified = fuzzy.clone();
            Simplifier::new().run(&mut simplified).unwrap();
        });
        println!(
            "{updates:>10} {nodes_before:>12} {:>12} {literals_before:>12} {:>12} {:>14.3}",
            simplified.node_count(),
            simplified.condition_literal_count(),
            ms(elapsed)
        );
        report.row(
            "histories",
            &[
                ("updates", updates.into()),
                ("nodes_before", nodes_before.into()),
                ("nodes_after", simplified.node_count().into()),
                ("literals_before", literals_before.into()),
                (
                    "literals_after",
                    simplified.condition_literal_count().into(),
                ),
                ("simplify_ms", ms(elapsed).into()),
            ],
        );
    }

    // Growth history (the E5 document): independent chained deletions are
    // provably irreducible in the per-node conjunctive formalism, so the
    // simplifier's job here is only to not make things worse.
    let rounds = if quick { 8 } else { 10 };
    let mut grown = deletion_growth_document(rounds);
    for k in 1..=rounds {
        deletion_growth_step(k).apply_to_fuzzy(&mut grown).unwrap();
    }
    let before = (grown.node_count(), grown.condition_literal_count());
    let mut simplified = grown.clone();
    let simplify_report = Simplifier::new().run(&mut simplified).unwrap();
    println!(
        "\nafter {rounds} chained deletions: {} nodes / {} literals  →  {} nodes / {} literals ({} passes)",
        before.0,
        before.1,
        simplified.node_count(),
        simplified.condition_literal_count(),
        simplify_report.passes
    );
    report.row(
        "growth_chain",
        &[
            ("rounds", rounds.into()),
            ("nodes_before", before.0.into()),
            ("literals_before", before.1.into()),
            ("nodes_after", simplified.node_count().into()),
            (
                "literals_after",
                simplified.condition_literal_count().into(),
            ),
            ("passes", simplify_report.passes.into()),
        ],
    );

    // Data-cleaning history: multi-match retractions fragment the survivor
    // conditions into pieces only the group re-cover can collapse.
    let (people, phones, cleaning_rounds) = if quick { (10, 3, 2) } else { (20, 3, 3) };
    let mut cleaned = cleaning_history(people, phones, cleaning_rounds);
    let before = (cleaned.node_count(), cleaned.condition_literal_count());
    let simplify_report = Simplifier::new().run(&mut cleaned).unwrap();
    println!(
        "cleaning history ({people} people × {phones} phones, {cleaning_rounds} retraction rounds): \
         {} nodes / {} literals  →  {} nodes / {} literals ({} merged)\n",
        before.0,
        before.1,
        cleaned.node_count(),
        cleaned.condition_literal_count(),
        simplify_report.merged_nodes
    );
    report.row(
        "cleaning",
        &[
            ("people", people.into()),
            ("phones", phones.into()),
            ("rounds", cleaning_rounds.into()),
            ("nodes_before", before.0.into()),
            ("literals_before", before.1.into()),
            ("nodes_after", cleaned.node_count().into()),
            ("literals_after", cleaned.condition_literal_count().into()),
            ("merged_nodes", simplify_report.merged_nodes.into()),
        ],
    );
}

// ---------------------------------------------------------------------------
// E9 — query evaluation scaling and the matcher ablation.
// ---------------------------------------------------------------------------

fn e9_query_scaling(quick: bool, report: &mut Report) {
    header(
        "E9",
        "TPWJ evaluation scaling and matcher ablation (slide 19 perspective)",
    );
    let sizes: &[usize] = if quick {
        &[100, 1000, 5000]
    } else {
        &[100, 1000, 10_000]
    };
    println!(
        "{:>10} {:>14} {:>16} {:>16} {:>10}",
        "elements", "pattern size", "naive (ms)", "indexed (ms)", "speedup"
    );
    for &size in sizes {
        let tree = document(size, BENCH_SEED + size as u64);
        for &pattern_nodes in &[2usize, 4, 6] {
            // Average over several derived queries to damp the variance of a
            // single random pattern.
            let queries: Vec<_> = (0..3)
                .map(|i| query_for(&tree, pattern_nodes, BENCH_SEED + pattern_nodes as u64 + i))
                .collect();
            let naive = time_it(3, || {
                for query in &queries {
                    let _ = query.find_matches_with(&tree, MatchStrategy::Naive);
                }
            });
            let indexed = time_it(3, || {
                for query in &queries {
                    let _ = query.find_matches_with(&tree, MatchStrategy::Indexed);
                }
            });
            let speedup = if indexed.as_nanos() > 0 {
                naive.as_secs_f64() / indexed.as_secs_f64()
            } else {
                f64::INFINITY
            };
            println!(
                "{size:>10} {pattern_nodes:>14} {:>16.3} {:>16.3} {speedup:>10.1}",
                ms(naive) / queries.len() as f64,
                ms(indexed) / queries.len() as f64
            );
            report.row(
                "matcher",
                &[
                    ("elements", size.into()),
                    ("pattern_nodes", pattern_nodes.into()),
                    ("naive_ms", (ms(naive) / queries.len() as f64).into()),
                    ("indexed_ms", (ms(indexed) / queries.len() as f64).into()),
                    ("speedup", speedup.into()),
                ],
            );
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// E10 — empirical complexity summary.
// ---------------------------------------------------------------------------

fn e10_complexity_summary(quick: bool, report: &mut Report) {
    header(
        "E10",
        "empirical complexity of query / update / simplification",
    );
    // Full mode used to be capped at 3200 elements: the bare deletion chain
    // turned a random mixed update at 6400 into a minutes-long blow-up. The
    // context-pruned apply pipeline removed the cap; the extra column shows
    // the same updates committed with `SimplifyPolicy::Inline`.
    let sizes: &[usize] = if quick {
        &[200, 800]
    } else {
        &[200, 800, 3200, 6400]
    };
    println!(
        "{:>10} {:>14} {:>14} {:>18} {:>16}",
        "elements", "query (ms)", "update (ms)", "update+inl (ms)", "simplify (ms)"
    );
    type Row = (usize, f64, f64, f64, f64);
    let mut rows: Vec<Row> = Vec::new();
    for &size in sizes {
        let fuzzy = fuzzy_document(size, 8, BENCH_SEED + size as u64);
        // Average over several derived queries/updates to damp the variance
        // of a single random pattern.
        let queries: Vec<_> = (0..3)
            .map(|i| query_for(fuzzy.tree(), 3, BENCH_SEED + i))
            .collect();
        let updates: Vec<_> = (0..3)
            .map(|i| update_for(fuzzy.tree(), BENCH_SEED + i))
            .collect();
        let query_time = time_it(3, || {
            for query in &queries {
                let _ = fuzzy.query(query);
            }
        })
        .div_f64(queries.len() as f64);
        let update_time = time_it(3, || {
            for update in &updates {
                let mut copy = fuzzy.clone();
                update.apply_to_fuzzy(&mut copy).unwrap();
            }
        })
        .div_f64(updates.len() as f64);
        let inline_time = time_it(3, || {
            for update in &updates {
                let mut copy = fuzzy.clone();
                update
                    .apply_to_fuzzy_with(&mut copy, SimplifyPolicy::Inline)
                    .unwrap();
            }
        })
        .div_f64(updates.len() as f64);
        let simplify_time = time_it(3, || {
            let mut copy = fuzzy.clone();
            Simplifier::new().run(&mut copy).unwrap();
        });
        println!(
            "{size:>10} {:>14.3} {:>14.3} {:>18.3} {:>16.3}",
            ms(query_time),
            ms(update_time),
            ms(inline_time),
            ms(simplify_time)
        );
        report.row(
            "complexity",
            &[
                ("elements", size.into()),
                ("query_ms", ms(query_time).into()),
                ("update_ms", ms(update_time).into()),
                ("update_inline_ms", ms(inline_time).into()),
                ("simplify_ms", ms(simplify_time).into()),
            ],
        );
        rows.push((
            size,
            ms(query_time),
            ms(update_time),
            ms(inline_time),
            ms(simplify_time),
        ));
    }
    if rows.len() >= 2 {
        let slope = |get: &dyn Fn(&Row) -> f64| {
            let first = &rows[0];
            let last = &rows[rows.len() - 1];
            let dx = (last.0 as f64 / first.0 as f64).ln();
            let dy = (get(last).max(1e-6) / get(first).max(1e-6)).ln();
            dy / dx
        };
        println!(
            "\napparent growth exponents (1.0 = linear): query {:.2}, update {:.2}, update+inline {:.2}, simplify {:.2}\n",
            slope(&|r| r.1),
            slope(&|r| r.2),
            slope(&|r| r.3),
            slope(&|r| r.4)
        );
        report.row(
            "exponents",
            &[
                ("query", slope(&|r| r.1).into()),
                ("update", slope(&|r| r.2).into()),
                ("update_inline", slope(&|r| r.3).into()),
                ("simplify", slope(&|r| r.4).into()),
            ],
        );
    }
}

// ---------------------------------------------------------------------------
// E11 — concurrent engine throughput scaling.
// ---------------------------------------------------------------------------

/// Replays one document's op stream against its warehouse handle, sleeping
/// `think` before each operation: the think time stands in for the work a
/// real imprecise module does per fact (extraction, NLP, entity resolution —
/// the pipelines of slide 2), which dwarfs the engine call itself. Worker
/// threads therefore overlap their module latency, and the measured scaling
/// shows whether the *engine* lets them: with one lock over the whole
/// document map, commits to independent documents would serialize and the
/// curve flattens; with per-document locks it keeps climbing.
fn e11_drive(
    document: &pxml_warehouse::Document,
    workload: &DocumentWorkload,
    think: Duration,
) -> usize {
    let mut ops = 0usize;
    for op in &workload.ops {
        std::thread::sleep(think);
        match op {
            WorkloadOp::Query(pattern) => {
                document.query(pattern).unwrap();
            }
            WorkloadOp::Commit(batch) => {
                let mut txn = document.begin();
                for update in batch {
                    txn = txn.stage(update.clone());
                }
                txn.commit().unwrap();
            }
        }
        ops += 1;
    }
    ops
}

fn e11_concurrent_engine(quick: bool, report: &mut Report) {
    header(
        "E11",
        "concurrent engine: mixed-workload throughput scaling over independent documents",
    );
    let config = ConcurrentWorkloadConfig {
        documents: 8,
        people_per_document: 16,
        ops_per_document: if quick { 24 } else { 60 },
        query_fraction: 0.5,
        updates_per_commit: 2,
    };
    let think = Duration::from_micros(2_000);
    let total_ops = config.documents * config.ops_per_document;
    println!(
        "{} documents x {} ops (50% queries, 50% 2-update commits), {} µs simulated module \
         latency per op",
        config.documents,
        config.ops_per_document,
        think.as_micros()
    );
    println!(
        "\n{:>10} {:>12} {:>12} {:>10}",
        "threads", "wall (ms)", "ops/s", "speedup"
    );
    let mut baseline_ms = None;
    for &threads in &[1usize, 2, 4, 8] {
        let dir =
            std::env::temp_dir().join(format!("pxml-harness-e11-{}-{threads}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::open(
            &dir,
            SessionConfig {
                simplify: SimplifyPolicy::Threshold(4096),
                compaction: CompactionPolicy::EveryNBatches(16),
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let workloads = concurrent_workload(BENCH_SEED, &config);
        let documents: Vec<_> = workloads
            .iter()
            .map(|w| {
                session
                    .create(&w.document, initial_document(&config))
                    .unwrap()
            })
            .collect();

        // Documents are dealt round-robin to threads. The same streams run
        // at every thread count; wall time includes thread spawning — part
        // of the price of using more threads.
        let barrier = std::sync::Barrier::new(threads);
        let start = Instant::now();
        let executed: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let own: Vec<_> = workloads
                        .iter()
                        .zip(&documents)
                        .skip(t)
                        .step_by(threads)
                        .collect();
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        own.iter()
                            .map(|(workload, document)| e11_drive(document, workload, think))
                            .sum::<usize>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let wall = start.elapsed();
        assert_eq!(executed, total_ops);

        let wall_ms = ms(wall);
        let baseline = *baseline_ms.get_or_insert(wall_ms);
        println!(
            "{threads:>10} {wall_ms:>12.1} {:>12.1} {:>9.2}x",
            total_ops as f64 / wall.as_secs_f64(),
            baseline / wall_ms
        );
        report.row(
            "scaling",
            &[
                ("threads", threads.into()),
                ("wall_ms", wall_ms.into()),
                ("ops_per_s", (total_ops as f64 / wall.as_secs_f64()).into()),
                ("speedup", (baseline / wall_ms).into()),
            ],
        );
        drop(documents);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Group-commit variant: the same mixed workload at full thread count,
    // with the session's fs backend in `Grouped` mode. The think time
    // between ops means windows are often shallow here (this is a *mixed*
    // workload, not a commit storm — E14 is the targeted sweep); the point
    // is that grouped mode is a drop-in for the engine path and the fsync
    // counter visibly drops below the commit count.
    let threads = config.documents;
    println!(
        "\ngroup-commit variant ({threads} threads, same workload):\n\
         {:>10} {:>12} {:>12} {:>10} {:>10} {:>12}",
        "commit", "wall (ms)", "ops/s", "fsyncs", "commits", "occupancy"
    );
    for (mode, commit) in [
        ("sync", CommitPolicy::Sync),
        (
            "grouped",
            CommitPolicy::Grouped {
                window_max_batches: 8,
                window_max_wait: Duration::from_millis(3),
            },
        ),
    ] {
        let dir = std::env::temp_dir().join(format!(
            "pxml-harness-e11-grp-{}-{mode}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::open(
            &dir,
            SessionConfig {
                simplify: SimplifyPolicy::Threshold(4096),
                compaction: CompactionPolicy::EveryNBatches(16),
                commit,
            },
        )
        .unwrap();
        let workloads = concurrent_workload(BENCH_SEED, &config);
        let documents: Vec<_> = workloads
            .iter()
            .map(|w| {
                session
                    .create(&w.document, initial_document(&config))
                    .unwrap()
            })
            .collect();
        let before = session.stats();
        let barrier = std::sync::Barrier::new(threads);
        let start = Instant::now();
        let executed: usize = std::thread::scope(|scope| {
            let handles: Vec<_> = workloads
                .iter()
                .zip(&documents)
                .map(|(workload, document)| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        e11_drive(document, workload, think)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        let wall = start.elapsed();
        assert_eq!(executed, total_ops);
        let stats = session.stats();
        let fsyncs = stats.fsyncs - before.fsyncs;
        let grouped_commits = stats.grouped_commits - before.grouped_commits;
        let windows = stats.grouped_windows - before.grouped_windows;
        let occupancy = if windows == 0 {
            0.0
        } else {
            grouped_commits as f64 / windows as f64
        };
        println!(
            "{mode:>10} {:>12.1} {:>12.1} {fsyncs:>10} {grouped_commits:>10} {occupancy:>12.2}",
            ms(wall),
            total_ops as f64 / wall.as_secs_f64()
        );
        report.row(
            "group_commit_variant",
            &[
                ("commit", mode.into()),
                ("wall_ms", ms(wall).into()),
                ("ops_per_s", (total_ops as f64 / wall.as_secs_f64()).into()),
                ("fsyncs", fsyncs.into()),
                ("grouped_commits", grouped_commits.into()),
                ("mean_window_occupancy", occupancy.into()),
            ],
        );
        drop(documents);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
}

// ---------------------------------------------------------------------------
// E12 — commit latency vs accumulated journal length.
// ---------------------------------------------------------------------------

/// Seeds a store with `seeded` committed batches and measures the latency of
/// appending one more: the median over `probes` appends (each a real durable
/// commit — on `FsBackend` that includes the fsync). Probes go through
/// `append_batch_grouped` so the `fs-grp` backend exercises its group-commit
/// pipeline; on ungrouped backends that is the identical synchronous call.
fn e12_probe(
    store: &dyn StorageBackend,
    seeded: usize,
    probes: usize,
    scenario: &PeopleScenarioConfig,
) -> Duration {
    store
        .save_document("people", &FuzzyTree::from_tree(people_directory(scenario)))
        .unwrap();
    for batch in journal_batches(BENCH_SEED, seeded, 2, scenario) {
        store.append_batch("people", &batch).unwrap();
    }
    let probe_batches = journal_batches(BENCH_SEED + 1, probes, 2, scenario);
    let mut samples: Vec<Duration> = probe_batches
        .iter()
        .map(|batch| {
            let start = Instant::now();
            store.append_batch_grouped("people", batch).unwrap();
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// The claim behind the append-only segment journal: committing one batch
/// costs O(batch), independent of how many batches the journal already
/// holds. The old monolithic journal rewrote the whole file per commit —
/// O(journal) — so its "vs empty" column grew linearly with the seed count.
fn e12_commit_latency_vs_journal(quick: bool, report: &mut Report) {
    header(
        "E12",
        "commit latency vs accumulated journal length (O(batch) claim, both backends)",
    );
    let seeds: &[usize] = &[0, 100, 1000, 5000];
    let probes = if quick { 15 } else { 41 };
    let scenario = PeopleScenarioConfig {
        people: 16,
        ..PeopleScenarioConfig::default()
    };
    println!(
        "{:>10} {:>14} {:>16} {:>10} {:>18}",
        "backend", "seeded", "append (µs)", "vs empty", "journal_len (µs)"
    );
    // `fs-grp` is the fs backend with group commit enabled and a zero
    // window wait: a lone committer drains its window immediately, so the
    // row isolates the pipeline's bookkeeping overhead over plain `fs` —
    // and shows the O(batch) property survives the grouped path.
    for backend in ["fs", "fs-grp", "mem"] {
        let mut empty_us = None;
        for &seeded in seeds {
            let dir = std::env::temp_dir().join(format!(
                "pxml-harness-e12-{}-{backend}-{seeded}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let store: Box<dyn StorageBackend> = match backend {
                "fs" => Box::new(FsBackend::open(&dir).unwrap()),
                "fs-grp" => Box::new(
                    FsBackend::with_options(
                        &dir,
                        FsOptions {
                            commit: CommitPolicy::Grouped {
                                window_max_batches: 8,
                                window_max_wait: Duration::ZERO,
                            },
                            ..FsOptions::default()
                        },
                    )
                    .unwrap(),
                ),
                _ => Box::new(MemBackend::new()),
            };
            let append = e12_probe(store.as_ref(), seeded, probes, &scenario);
            // The O(1) journal meter: time a batch of length queries.
            let meter_reads = 1000;
            let meter_start = Instant::now();
            for _ in 0..meter_reads {
                let _ = store.journal_length("people").unwrap();
            }
            let meter_us = meter_start.elapsed().as_secs_f64() * 1e6 / meter_reads as f64;
            let append_us = append.as_secs_f64() * 1e6;
            let baseline = *empty_us.get_or_insert(append_us);
            println!(
                "{backend:>10} {seeded:>14} {append_us:>16.1} {:>9.2}x {meter_us:>18.3}",
                append_us / baseline
            );
            report.row(
                "latency",
                &[
                    ("backend", backend.into()),
                    ("seeded", seeded.into()),
                    ("append_us", append_us.into()),
                    ("vs_empty", (append_us / baseline).into()),
                    ("journal_len_us", meter_us.into()),
                ],
            );
            drop(store);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    println!();
}

// ---------------------------------------------------------------------------
// E13 — exact disjunction probability and group re-cover: BDD vs Shannon.
// ---------------------------------------------------------------------------

/// The claim behind the ROBDD engine (PR 5): the probability of a
/// disjunction of match conditions — the computation behind
/// `merged_answers` / `selection_probability` and the commutation theorem —
/// is one model-counting walk linear in diagram size, where Shannon
/// expansion pays `2^events`. The first table sweeps the number of distinct
/// events a single merged answer group spans and times the full
/// `merged_answers` path (grouping + BDD) against the Shannon oracle on the
/// same disjunction; Shannon is skipped beyond a cap where it becomes
/// intractable. The second table sweeps the width of deletion-fragmented
/// sibling groups through the simplifier's re-cover, which the BDD lifted
/// from 8 to `GROUP_RECOVER_MAX_EVENTS` (24) events: widths above 8 were
/// previously not re-covered at all.
fn e13_bdd_vs_shannon(quick: bool, report: &mut Report) {
    header(
        "E13",
        "exact disjunction probability and re-cover: BDD vs Shannon expansion",
    );
    let event_counts: &[usize] = if quick {
        &[4, 8, 12, 16, 18, 20, 24]
    } else {
        &[4, 8, 12, 16, 18, 20, 24, 28, 32]
    };
    let shannon_cap = if quick { 18 } else { 20 };
    println!(
        "merged-answer probability, one group of `events` matches × 3 literals:\n\
         {:>8} {:>9} {:>14} {:>16} {:>10} {:>8}",
        "events", "matches", "bdd (ms)", "shannon (ms)", "ratio", "agree"
    );
    for &events in event_counts {
        let fuzzy = merged_answer_document(events, events, 3, BENCH_SEED + events as u64);
        let query = Pattern::parse("r { a }").unwrap();
        let result = fuzzy.query(&query);
        let mut merged = Vec::new();
        let bdd_time = time_it(5, || {
            merged = result.merged_answers(fuzzy.events());
        });
        assert_eq!(merged.len(), 1, "same-body matches must form one group");
        let conditions: Vec<_> = result.matches.iter().map(|m| m.condition.clone()).collect();
        let disjunction = Formula::any_of_conditions(&conditions);
        let (shannon_ms, ratio, agree) = if events <= shannon_cap {
            let mut by_shannon = 0.0;
            let shannon_time = time_it(3, || {
                by_shannon = disjunction.probability_shannon(fuzzy.events());
            });
            let agree = (by_shannon - merged[0].1).abs() < 1e-9;
            (
                Some(ms(shannon_time)),
                Some(ms(shannon_time) / ms(bdd_time).max(1e-6)),
                Some(agree),
            )
        } else {
            // 2^events Shannon recursions: intractable, oracle skipped — so
            // no agreement check ran either ('-' / null, not a pass).
            (None, None, None)
        };
        println!(
            "{events:>8} {:>9} {:>14.3} {:>16} {:>10} {:>8}",
            result.len(),
            ms(bdd_time),
            shannon_ms.map_or("-".into(), |t| format!("{t:.3}")),
            ratio.map_or("-".into(), |r| format!("{r:.0}x")),
            agree.map_or("-".into(), |a: bool| a.to_string()),
        );
        report.row(
            "merged_probability",
            &[
                ("events", events.into()),
                ("matches", result.len().into()),
                ("bdd_ms", ms(bdd_time).into()),
                (
                    "shannon_ms",
                    shannon_ms.map_or(Json::Num(f64::NAN), Json::from),
                ),
                (
                    "shannon_over_bdd",
                    ratio.map_or(Json::Num(f64::NAN), Json::from),
                ),
                // null when the oracle (and thus the check) was skipped.
                ("agree", agree.map_or(Json::Num(f64::NAN), Json::from)),
            ],
        );
    }

    // Group re-cover vs width: one retraction round over `phones` uncertain
    // phones fragments each person's email into `phones + 1` disjoint
    // pieces spanning `phones + 2` events (the phones, the email's own
    // event, the shared confidence). The BDD path cover collapses every
    // ladder to its 2-piece optimum at any width ≤ GROUP_RECOVER_MAX_EVENTS;
    // before PR 5 widths above 8 were left fully fragmented.
    let phone_counts: &[usize] = if quick {
        &[6, 10, 14, 22]
    } else {
        &[6, 10, 14, 18, 22]
    };
    let people = 3;
    println!(
        "\ngroup re-cover on deletion ladders ({people} people, 1 retraction round):\n\
         {:>8} {:>11} {:>16} {:>15} {:>15} {:>14}",
        "width", "fragments", "fragments after", "nodes before", "nodes after", "simplify (ms)"
    );
    for &phones in phone_counts {
        let width = phones + 2;
        let mut fuzzy = cleaning_history(people, phones, 1);
        let fragments = fuzzy.tree().find_elements("email").len();
        let nodes_before = fuzzy.node_count();
        let simplify_time = {
            let start = Instant::now();
            Simplifier::new().run(&mut fuzzy).unwrap();
            start.elapsed()
        };
        let fragments_after = fuzzy.tree().find_elements("email").len();
        println!(
            "{width:>8} {fragments:>11} {fragments_after:>16} {nodes_before:>15} {:>15} {:>14.3}",
            fuzzy.node_count(),
            ms(simplify_time)
        );
        report.row(
            "recover",
            &[
                ("width", width.into()),
                ("fragments", fragments.into()),
                ("fragments_after", fragments_after.into()),
                ("nodes_before", nodes_before.into()),
                ("nodes_after", fuzzy.node_count().into()),
                ("simplify_ms", ms(simplify_time).into()),
            ],
        );
    }
    println!();
}

// ---------------------------------------------------------------------------
// E14 — group commit: cross-document fsync coalescing.
// ---------------------------------------------------------------------------

/// Simulated device-flush latency for E14. A real fsync on the CI
/// container's storage costs anywhere from microseconds (page-cache
/// absorbed) to milliseconds, and is far too noisy to sweep; the backend's
/// `simulated_sync_latency` sleeps this long *inside the device gate* per
/// fsync round — flush rounds serialize, exactly like a single drive —
/// making the round *count* the dominant cost, which is the term group
/// commit exists to shrink.
const E14_FSYNC_LATENCY: Duration = Duration::from_millis(5);

fn e14_doc(index: usize) -> String {
    format!("doc-{index}")
}

/// Opens a warehouse over an explicit `FsBackend` with the given commit
/// policy and the simulated flush latency, and creates `docs` documents.
fn e14_open(
    dir: &std::path::Path,
    commit: CommitPolicy,
    docs: usize,
    scenario: &PeopleScenarioConfig,
) -> Warehouse {
    let _ = std::fs::remove_dir_all(dir);
    let backend = FsBackend::with_options(
        dir,
        FsOptions {
            commit,
            simulated_sync_latency: E14_FSYNC_LATENCY,
            ..FsOptions::default()
        },
    )
    .unwrap();
    let warehouse = Warehouse::with_backend(
        std::sync::Arc::new(backend),
        SessionConfig {
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    for doc in 0..docs {
        warehouse
            .create_document(&e14_doc(doc), people_directory(scenario))
            .unwrap();
    }
    warehouse
}

/// Barrier-starts one writer thread per document; each commits its
/// pre-generated batches in order through the engine. Returns the wall time
/// of the commit phase.
fn e14_run(warehouse: &Warehouse, batches: &[Vec<Vec<UpdateTransaction>>]) -> Duration {
    let barrier = std::sync::Barrier::new(batches.len());
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (doc, own) in batches.iter().enumerate() {
            let barrier = &barrier;
            let name = e14_doc(doc);
            scope.spawn(move || {
                barrier.wait();
                for batch in own {
                    warehouse.commit_batch(&name, batch, None).unwrap();
                }
            });
        }
    });
    start.elapsed()
}

/// The claim behind the group-commit layer: when N sessions commit to N
/// documents concurrently, the durability fsyncs — the serialized,
/// latency-bound resource — can be shared across documents, so commit
/// throughput scales with writers instead of being flattened by one flush
/// per commit. Sweeps writers × {per-batch sync, grouped} on a backend with
/// a simulated 2 ms flush; then window size at 8 writers; then the async
/// pipeline depth a single writer gets from `commit_async`.
fn e14_group_commit(quick: bool, report: &mut Report) {
    header(
        "E14",
        "group commit: cross-document fsync coalescing (grouped vs per-batch sync)",
    );
    let scenario = PeopleScenarioConfig {
        people: 8,
        ..PeopleScenarioConfig::default()
    };
    let commits_per_writer = if quick { 12 } else { 30 };
    let window_wait = Duration::from_millis(4);
    println!(
        "N writers -> N documents, fs backend, simulated {} ms device flush, \
         {commits_per_writer} x 2-update commits per writer",
        E14_FSYNC_LATENCY.as_millis()
    );
    println!(
        "\n{:>8} {:>9} {:>11} {:>11} {:>9} {:>8} {:>9} {:>11} {:>10}",
        "writers",
        "commit",
        "wall (ms)",
        "commits/s",
        "speedup",
        "fsyncs",
        "windows",
        "occupancy",
        "journal B"
    );
    for &writers in &[1usize, 2, 4, 8] {
        let batches: Vec<Vec<Vec<UpdateTransaction>>> = (0..writers)
            .map(|doc| journal_batches(BENCH_SEED + doc as u64, commits_per_writer, 2, &scenario))
            .collect();
        let commits = writers * commits_per_writer;
        let mut sync_secs = None;
        for (mode, policy) in [
            ("sync", CommitPolicy::Sync),
            (
                "grouped",
                CommitPolicy::Grouped {
                    window_max_batches: writers,
                    window_max_wait: window_wait,
                },
            ),
        ] {
            let dir = std::env::temp_dir().join(format!(
                "pxml-harness-e14-{}-{mode}-{writers}",
                std::process::id()
            ));
            let warehouse = e14_open(&dir, policy, writers, &scenario);
            let before = warehouse.stats();
            let wall = e14_run(&warehouse, &batches);
            let stats = warehouse.stats();
            let fsyncs = stats.fsyncs - before.fsyncs;
            let grouped_commits = stats.grouped_commits - before.grouped_commits;
            let windows = stats.grouped_windows - before.grouped_windows;
            let occupancy = if windows == 0 {
                0.0
            } else {
                grouped_commits as f64 / windows as f64
            };
            let journal_bytes: u64 = (0..writers)
                .map(|doc| warehouse.journal_size_bytes(&e14_doc(doc)).unwrap())
                .sum();
            let secs = wall.as_secs_f64();
            let speedup = match mode {
                "sync" => {
                    sync_secs = Some(secs);
                    1.0
                }
                _ => sync_secs.unwrap() / secs,
            };
            if mode == "grouped" {
                assert_eq!(
                    grouped_commits, commits,
                    "every commit must go through the grouped pipeline"
                );
                if writers >= 2 {
                    // The satellite assertion: grouped mode must coalesce —
                    // strictly fewer flush rounds than commits.
                    assert!(
                        fsyncs < commits,
                        "grouped mode issued {fsyncs} fsync rounds for {commits} commits"
                    );
                }
            }
            println!(
                "{writers:>8} {mode:>9} {:>11.1} {:>11.1} {speedup:>8.2}x {fsyncs:>8} {windows:>9} {occupancy:>11.2} {journal_bytes:>10}",
                ms(wall),
                commits as f64 / secs
            );
            report.row(
                "scaling",
                &[
                    ("writers", writers.into()),
                    ("commit", mode.into()),
                    ("wall_ms", ms(wall).into()),
                    ("commits_per_s", (commits as f64 / secs).into()),
                    ("speedup_vs_sync", speedup.into()),
                    ("fsyncs", fsyncs.into()),
                    ("grouped_windows", windows.into()),
                    ("mean_window_occupancy", occupancy.into()),
                    ("journal_bytes", journal_bytes.into()),
                ],
            );
            drop(warehouse);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // Window-size sweep at full writer count: how much coalescing a cap of
    // `window` batches per flush round buys.
    let writers = 8usize;
    let batches: Vec<Vec<Vec<UpdateTransaction>>> = (0..writers)
        .map(|doc| journal_batches(BENCH_SEED + doc as u64, commits_per_writer, 2, &scenario))
        .collect();
    let commits = writers * commits_per_writer;
    println!(
        "\nwindow-size sweep ({writers} writers, grouped):\n\
         {:>8} {:>11} {:>11} {:>8} {:>9} {:>11}",
        "window", "wall (ms)", "commits/s", "fsyncs", "windows", "occupancy"
    );
    for &window in &[2usize, 4, 8] {
        let dir =
            std::env::temp_dir().join(format!("pxml-harness-e14-w{window}-{}", std::process::id()));
        let warehouse = e14_open(
            &dir,
            CommitPolicy::Grouped {
                window_max_batches: window,
                window_max_wait: window_wait,
            },
            writers,
            &scenario,
        );
        let before = warehouse.stats();
        let wall = e14_run(&warehouse, &batches);
        let stats = warehouse.stats();
        let fsyncs = stats.fsyncs - before.fsyncs;
        let windows = stats.grouped_windows - before.grouped_windows;
        let occupancy = if windows == 0 {
            0.0
        } else {
            (stats.grouped_commits - before.grouped_commits) as f64 / windows as f64
        };
        println!(
            "{window:>8} {:>11.1} {:>11.1} {fsyncs:>8} {windows:>9} {occupancy:>11.2}",
            ms(wall),
            commits as f64 / wall.as_secs_f64()
        );
        report.row(
            "window_sweep",
            &[
                ("window_max_batches", window.into()),
                ("wall_ms", ms(wall).into()),
                (
                    "commits_per_s",
                    (commits as f64 / wall.as_secs_f64()).into(),
                ),
                ("fsyncs", fsyncs.into()),
                ("grouped_windows", windows.into()),
                ("mean_window_occupancy", occupancy.into()),
            ],
        );
        drop(warehouse);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // Async pipeline: a single writer keeps `depth` commits in flight with
    // `commit_batch_async` and waits for them in batches. Depth 1 is the
    // synchronous ack-per-commit behavior; deeper pipelines let one
    // session's own commits share flush rounds with each other.
    let async_commits = commits_per_writer * 2;
    let batches = journal_batches(BENCH_SEED, async_commits, 2, &scenario);
    println!(
        "\nasync pipeline (1 writer, 1 document, grouped window 8, {async_commits} commits):\n\
         {:>8} {:>11} {:>11} {:>9} {:>8}",
        "depth", "wall (ms)", "commits/s", "speedup", "fsyncs"
    );
    let mut depth1_secs = None;
    for &depth in &[1usize, 2, 4, 8] {
        let dir = std::env::temp_dir().join(format!(
            "pxml-harness-e14-async{depth}-{}",
            std::process::id()
        ));
        let warehouse = e14_open(
            &dir,
            CommitPolicy::Grouped {
                window_max_batches: 8,
                window_max_wait: window_wait,
            },
            1,
            &scenario,
        );
        let before = warehouse.stats();
        let start = Instant::now();
        let mut in_flight = Vec::with_capacity(depth);
        for batch in &batches {
            in_flight.push(
                warehouse
                    .commit_batch_async(&e14_doc(0), batch, None)
                    .unwrap(),
            );
            if in_flight.len() == depth {
                for handle in in_flight.drain(..) {
                    handle.wait().unwrap();
                }
            }
        }
        for handle in in_flight.drain(..) {
            handle.wait().unwrap();
        }
        let wall = start.elapsed();
        let fsyncs = warehouse.stats().fsyncs - before.fsyncs;
        let secs = wall.as_secs_f64();
        let speedup = *depth1_secs.get_or_insert(secs) / secs;
        println!(
            "{depth:>8} {:>11.1} {:>11.1} {speedup:>8.2}x {fsyncs:>8}",
            ms(wall),
            async_commits as f64 / secs
        );
        report.row(
            "async_pipeline",
            &[
                ("depth", depth.into()),
                ("wall_ms", ms(wall).into()),
                ("commits_per_s", (async_commits as f64 / secs).into()),
                ("speedup_vs_depth1", speedup.into()),
                ("fsyncs", fsyncs.into()),
            ],
        );
        drop(warehouse);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!();
}

// ---------------------------------------------------------------------------
// E15 — MVCC snapshot reads: reader latency under a streaming writer.
// ---------------------------------------------------------------------------

/// Simulated device-flush latency for E15 — same rationale as
/// [`E14_FSYNC_LATENCY`]. Every commit pays this inside the device gate, so
/// a reader that had to wait for a writer mid-commit (the pre-MVCC engine's
/// writer-priority lock) would see its tail latency jump to this scale.
const E15_FSYNC_LATENCY: Duration = Duration::from_millis(5);

/// Nearest-rank percentile over an already-sorted latency sample.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank]
}

fn micros(duration: Duration) -> f64 {
    duration.as_secs_f64() * 1e6
}

/// The claim behind the copy-on-write snapshot engine: readers pin the
/// published snapshot in O(1) and run lock-free, so their latency
/// distribution is flat whether or not a writer is streaming commits —
/// commits whose durability fsync costs 5 ms each and would stall every
/// query behind the old writer-priority document lock. Measures reader
/// p50/p99 on an idle document, then with one writer streaming, and records
/// the chunk-copy rate of the stream (commits path-copy only the chunks
/// their batch touches).
fn e15_snapshot_reads(quick: bool, report: &mut Report) {
    header(
        "E15",
        "snapshot reads: reader p50/p99 while a writer streams commits",
    );
    let scenario = PeopleScenarioConfig {
        people: 32,
        ..PeopleScenarioConfig::default()
    };
    let readers = if quick { 2 } else { 4 };
    let idle_queries = if quick { 300 } else { 2000 };
    let commits = if quick { 24 } else { 80 };
    let dir = std::env::temp_dir().join(format!("pxml-harness-e15-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = FsBackend::with_options(
        &dir,
        FsOptions {
            commit: CommitPolicy::Sync,
            simulated_sync_latency: E15_FSYNC_LATENCY,
            ..FsOptions::default()
        },
    )
    .unwrap();
    let warehouse = Warehouse::with_backend(
        std::sync::Arc::new(backend),
        SessionConfig {
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    warehouse
        .create_document("doc", people_directory(&scenario))
        .unwrap();
    let phones = Pattern::parse("person { phone }").unwrap();
    println!(
        "{readers} readers vs 1 writer on one document, fs backend, simulated {} ms \
         device flush per commit",
        E15_FSYNC_LATENCY.as_millis()
    );

    // Idle baseline: readers query an untouched document.
    let mut idle: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let mut samples = Vec::with_capacity(idle_queries);
                    for _ in 0..idle_queries {
                        let start = Instant::now();
                        let _ = warehouse.query("doc", &phones).unwrap();
                        samples.push(start.elapsed());
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap())
            .collect()
    });
    idle.sort_unstable();

    // Contended phase: the same readers spin while one writer streams
    // `commits` two-update batches, each paying the 5 ms flush.
    let batches = journal_batches(BENCH_SEED, commits, 2, &scenario);
    let copies_before = warehouse
        .snapshot("doc")
        .unwrap()
        .fuzzy()
        .tree()
        .chunk_copies();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (mut contended, writer_wall) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let mut samples = Vec::new();
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let start = Instant::now();
                        let _ = warehouse.query("doc", &phones).unwrap();
                        samples.push(start.elapsed());
                    }
                    samples
                })
            })
            .collect();
        let writer = scope.spawn(|| {
            let start = Instant::now();
            for batch in &batches {
                warehouse.commit_batch("doc", batch, None).unwrap();
            }
            let wall = start.elapsed();
            stop.store(true, std::sync::atomic::Ordering::Release);
            wall
        });
        let wall = writer.join().unwrap();
        let samples = handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap())
            .collect::<Vec<Duration>>();
        (samples, wall)
    });
    contended.sort_unstable();
    let copied = warehouse
        .snapshot("doc")
        .unwrap()
        .fuzzy()
        .tree()
        .chunk_copies()
        - copies_before;

    // Post-stream baseline on the grown document: the fair reference for
    // "contended p99 is flat" — the stream made the document bigger, so
    // queries are intrinsically slower than against the initial state.
    let mut idle_after: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|_| {
                scope.spawn(|| {
                    let mut samples = Vec::with_capacity(idle_queries);
                    for _ in 0..idle_queries {
                        let start = Instant::now();
                        let _ = warehouse.query("doc", &phones).unwrap();
                        samples.push(start.elapsed());
                    }
                    samples
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().unwrap())
            .collect()
    });
    idle_after.sort_unstable();

    println!(
        "\n{:>11} {:>9} {:>10} {:>10} {:>10}",
        "phase", "samples", "p50 (us)", "p99 (us)", "max (us)"
    );
    for (phase, samples) in [
        ("idle", &idle),
        ("contended", &contended),
        ("idle-after", &idle_after),
    ] {
        println!(
            "{phase:>11} {:>9} {:>10.1} {:>10.1} {:>10.1}",
            samples.len(),
            micros(percentile(samples, 0.50)),
            micros(percentile(samples, 0.99)),
            micros(*samples.last().unwrap()),
        );
        report.row(
            "reader_latency",
            &[
                ("phase", phase.into()),
                ("readers", readers.into()),
                ("samples", samples.len().into()),
                ("p50_us", micros(percentile(samples, 0.50)).into()),
                ("p99_us", micros(percentile(samples, 0.99)).into()),
                ("max_us", micros(*samples.last().unwrap()).into()),
            ],
        );
    }
    let writer_secs = writer_wall.as_secs_f64();
    println!(
        "\nwriter: {commits} commits in {:.1} ms ({:.1} commits/s), \
         {:.1} chunk copies per commit",
        ms(writer_wall),
        commits as f64 / writer_secs,
        copied as f64 / commits as f64
    );
    report.row(
        "writer",
        &[
            ("commits", commits.into()),
            ("wall_ms", ms(writer_wall).into()),
            ("commits_per_s", (commits as f64 / writer_secs).into()),
            (
                "copied_chunks_per_commit",
                (copied as f64 / commits as f64).into(),
            ),
        ],
    );

    // The acceptance gate: reader tail latency must not inherit the
    // writer's 5 ms flush stalls. (Queries themselves run tens of
    // microseconds, so this bound has orders-of-magnitude headroom while
    // still catching any reader-blocks-on-writer regression.)
    let contended_p99 = percentile(&contended, 0.99);
    assert!(
        contended_p99 < E15_FSYNC_LATENCY,
        "reader p99 {:.1} us reached the writer's flush latency — readers are \
         blocking on commits",
        micros(contended_p99)
    );
    drop(warehouse);
    let _ = std::fs::remove_dir_all(&dir);
    println!();
}

// ---------------------------------------------------------------------------
// E17 — pxml-server request-rate sweep: wire throughput and tail latency.
// ---------------------------------------------------------------------------

/// Simulated device-flush latency for E17 — deliberately heavier than
/// [`E15_FSYNC_LATENCY`] so the sweep stays flush-bound even on a small
/// box: every durable commit pays this inside the device gate, pinning
/// single-client throughput to it, and the scaling headroom comes from the
/// cross-document group-commit pipeline sharing windows between clients.
/// It also keeps the read-tail gate honest — wire queries pay scheduler
/// noise under 16-way contention, which must stay clearly below a flush.
const E17_FSYNC_LATENCY: Duration = Duration::from_millis(15);

/// Builds the initial directory document the E17 clients hammer.
fn e17_document(people: usize) -> String {
    let mut xml = String::from("<directory>");
    for index in 0..people {
        xml.push_str(&format!("<person><name>person-{index}</name></person>"));
    }
    xml.push_str("</directory>");
    xml
}

/// One confidence-weighted phone insertion for the E17 commit mix.
fn e17_batch(person: usize, op: usize) -> Vec<UpdateTransaction> {
    let pattern = Pattern::parse(&format!("person {{ name[=\"person-{person}\"] }}")).unwrap();
    let root = pattern.root();
    let tree = parse_data_tree(&format!("<phone>+33-{op}</phone>")).unwrap();
    vec![UpdateTransaction::new(pattern, 0.9)
        .unwrap()
        .with_insert(root, tree)]
}

/// The served warehouse under load: a request-rate sweep from 1 to 16
/// concurrent wire clients issuing a mixed query/commit stream (4:1) over
/// 8 documents across 2 tenants. Reports throughput and query/commit
/// p50/p99 per level, then probes admission control: with a tenant budget
/// of one and a slow flush in progress, an over-budget request must shed
/// with `Busy` within the admission timeout instead of queueing behind the
/// flush. Gates: 16-client throughput at least 4x the single-client rate
/// (group-commit windows shared across connections), query p99 below the
/// flush latency at full contention (snapshot reads never block on
/// writers), and the `Busy` probe returning inside its bound.
fn e17_request_rate(quick: bool, report: &mut Report) {
    header(
        "E17",
        "pxml-server request-rate sweep: throughput and tail latency over the wire",
    );
    let levels: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16]
    };
    let ops_per_client = if quick { 30 } else { 60 };
    let tenants = ["tenant-a", "tenant-b"];
    // One document per client at the top level: commits to one document
    // serialize on its commit mutex, so cross-document window sharing —
    // not intra-document queueing — is what the sweep measures.
    let docs_per_tenant = 8usize;
    println!(
        "mixed 4:1 query/commit over {} docs x {} tenants, grouped commits, \
         simulated {} ms device flush",
        docs_per_tenant,
        tenants.len(),
        E17_FSYNC_LATENCY.as_millis()
    );
    println!(
        "\n{:>8} {:>7} {:>9} {:>9} {:>10} {:>10} {:>10} {:>10}",
        "clients", "ops", "wall_ms", "ops/s", "q_p50_us", "q_p99_us", "c_p50_us", "c_p99_us"
    );

    let mut single_client_rate = 0.0f64;
    let mut top_rate = 0.0f64;
    let mut top_query_p99 = Duration::ZERO;
    for &clients in levels {
        let dir =
            std::env::temp_dir().join(format!("pxml-harness-e17-{}-{clients}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut config = ServerConfig::new(&dir);
        config.session.commit = CommitPolicy::Grouped {
            window_max_batches: 8,
            // Long enough for concurrent clients to actually fill windows
            // (a 2 ms wait closes them half-empty under a 15 ms flush).
            window_max_wait: Duration::from_millis(5),
        };
        config.fs.simulated_sync_latency = E17_FSYNC_LATENCY;
        let server = Server::start(config).unwrap();
        let addr = server.local_addr();
        for tenant in tenants {
            let mut setup = Client::connect(addr, tenant).unwrap();
            for doc in 0..docs_per_tenant {
                setup
                    .open(&format!("doc-{doc}"), Some(&e17_document(12)))
                    .unwrap();
            }
            setup.close().unwrap();
        }

        let barrier = std::sync::Barrier::new(clients);
        let started = Instant::now();
        let per_client: Vec<(Vec<Duration>, Vec<Duration>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|client| {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let tenant = tenants[client % tenants.len()];
                        let doc = format!("doc-{}", (client / tenants.len()) % docs_per_tenant);
                        let mut wire = Client::connect(addr, tenant).unwrap();
                        barrier.wait();
                        let mut queries = Vec::new();
                        let mut commits = Vec::new();
                        for op in 0..ops_per_client {
                            let start = Instant::now();
                            if op % 5 == 4 {
                                let batch = e17_batch(op % 12, client * 1000 + op);
                                wire.commit(&doc, &batch).unwrap();
                                commits.push(start.elapsed());
                            } else {
                                let _ = wire.query(&doc, "person { phone }").unwrap();
                                queries.push(start.elapsed());
                            }
                        }
                        let _ = wire.close();
                        (queries, commits)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });
        let wall = started.elapsed();
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);

        let mut queries: Vec<Duration> = Vec::new();
        let mut commits: Vec<Duration> = Vec::new();
        for (q, c) in per_client {
            queries.extend(q);
            commits.extend(c);
        }
        queries.sort_unstable();
        commits.sort_unstable();
        let ops = queries.len() + commits.len();
        let rate = ops as f64 / wall.as_secs_f64();
        if clients == 1 {
            single_client_rate = rate;
        }
        if clients == *levels.last().unwrap() {
            top_rate = rate;
            top_query_p99 = percentile(&queries, 0.99);
        }
        println!(
            "{clients:>8} {ops:>7} {:>9.1} {:>9.0} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            ms(wall),
            rate,
            micros(percentile(&queries, 0.50)),
            micros(percentile(&queries, 0.99)),
            micros(percentile(&commits, 0.50)),
            micros(percentile(&commits, 0.99)),
        );
        report.row(
            "sweep",
            &[
                ("clients", clients.into()),
                ("ops", ops.into()),
                ("wall_ms", ms(wall).into()),
                ("ops_per_s", rate.into()),
                ("query_p50_us", micros(percentile(&queries, 0.50)).into()),
                ("query_p99_us", micros(percentile(&queries, 0.99)).into()),
                ("commit_p50_us", micros(percentile(&commits, 0.50)).into()),
                ("commit_p99_us", micros(percentile(&commits, 0.99)).into()),
            ],
        );
    }
    let speedup = top_rate / single_client_rate;
    println!(
        "\nscaling: {:.0} -> {:.0} ops/s ({speedup:.1}x), query p99 at full \
         contention {:.1} us",
        single_client_rate,
        top_rate,
        micros(top_query_p99)
    );
    report.row(
        "scaling",
        &[
            ("single_client_ops_per_s", single_client_rate.into()),
            ("top_ops_per_s", top_rate.into()),
            ("speedup", speedup.into()),
            ("top_query_p99_us", micros(top_query_p99).into()),
        ],
    );
    // Gate 1: the shared group-commit windows must buy real concurrency —
    // 16 flush-bound clients cannot be serialized one window each.
    assert!(
        speedup >= 4.0,
        "16-client throughput is only {speedup:.2}x the single-client rate"
    );
    // Gate 2: the E15 claim holds over the wire — snapshot reads never
    // inherit a writer's flush stall, even at full contention.
    assert!(
        top_query_p99 < E17_FSYNC_LATENCY,
        "query p99 {:.1} us reached the flush latency under contention",
        micros(top_query_p99)
    );

    // Admission probe: budget of one, one slow flush in the gate — the
    // over-budget request must shed, not queue.
    let dir = std::env::temp_dir().join(format!("pxml-harness-e17-busy-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = ServerConfig::new(&dir);
    config.tenant_inflight = 1;
    config.admission_timeout = Duration::from_millis(40);
    config.fs.simulated_sync_latency = Duration::from_millis(400);
    let server = Server::start(config).unwrap();
    let addr = server.local_addr();
    let mut setup = Client::connect(addr, "tenant-a").unwrap();
    setup.open("doc-0", Some(&e17_document(12))).unwrap();
    let writer = std::thread::spawn(move || {
        let mut writer = Client::connect(addr, "tenant-a").unwrap();
        writer.commit("doc-0", &e17_batch(0, 0)).unwrap();
    });
    std::thread::sleep(Duration::from_millis(100));
    let probe_started = Instant::now();
    let shed = setup.query("doc-0", "person { name }");
    let probe_elapsed = probe_started.elapsed();
    let got_busy = matches!(&shed, Err(err) if err.is_busy());
    println!(
        "busy probe: over-budget query shed in {:.1} ms (busy = {got_busy})",
        ms(probe_elapsed)
    );
    report.row(
        "busy_probe",
        &[
            ("got_busy", got_busy.into()),
            ("shed_ms", ms(probe_elapsed).into()),
            ("admission_timeout_ms", 40i64.into()),
        ],
    );
    assert!(got_busy, "expected Busy, got {shed:?}");
    assert!(
        probe_elapsed < Duration::from_millis(300),
        "busy shed took {probe_elapsed:?}, admission timeout is 40 ms"
    );
    writer.join().unwrap();
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    println!();
}

// ---------------------------------------------------------------------------
// E18 — chaos sweep: injected storage faults under mixed load
// ---------------------------------------------------------------------------

/// Simulated device-flush latency for E18: enough to make the durability
/// path the resource faults degrade, small enough that the sweep stays
/// cheap — the goodput gate compares ratios, not absolute rates.
const E18_FSYNC_LATENCY: Duration = Duration::from_millis(2);

fn e18_doc(index: usize) -> String {
    format!("chaos-{index}")
}

/// One tagged confidence-weighted insertion: the tag round-trips through
/// the journal, so replay can be compared against the acked-commit list
/// element by element.
fn e18_batch(tag: u64) -> Vec<UpdateTransaction> {
    let pattern = Pattern::parse("person { name[=\"person-0\"] }").unwrap();
    let root = pattern.root();
    let tree = parse_data_tree(&format!("<email>c{tag}@chaos</email>")).unwrap();
    vec![UpdateTransaction::new(pattern, 0.9)
        .unwrap()
        .with_insert(root, tree)]
}

/// The tags of every update a cold, fault-free reopen of the store would
/// replay for `doc`, in replay order.
fn e18_journal_tags(backend: &dyn StorageBackend, doc: &str) -> Vec<u64> {
    backend
        .read_journal(doc)
        .unwrap()
        .iter()
        .map(|update| match &update.operations()[0] {
            pxml_core::UpdateOperation::Insert { subtree, .. } => subtree
                .node_value(subtree.root())
                .unwrap_or_default()
                .strip_prefix('c')
                .and_then(|rest| rest.split('@').next())
                .and_then(|tag| tag.parse().ok())
                .expect("E18 journal records carry c<tag>@chaos emails"),
            _ => unreachable!("E18 updates are inserts"),
        })
        .collect()
}

/// The robustness claim behind the fault-injection layer, measured: under a
/// mixed 4:1 query/commit load, injected fsync failures must never corrupt
/// the acked-commit prefix — a failed commit quarantines the document,
/// readers keep serving the last durable snapshot, `reopen_document` heals
/// it, and a cold restart replays exactly the acknowledged commits. Part 1
/// pins that with one scheduled fault; part 2 sweeps seeded fault rates
/// (fault-free, 0.5%, 1%, 2%) through the grouped commit pipeline with
/// retrying writers and gates both exactness at every rate and bounded
/// goodput degradation: at a 1% fsync fault rate, goodput must stay at or
/// above 70% of the fault-free baseline.
fn e18_chaos_sweep(quick: bool, report: &mut Report) {
    header(
        "E18",
        "chaos sweep: fsync faults under mixed load, exact acked-prefix recovery",
    );

    // --- part 1: one scheduled fault, deterministic accounting ------------
    // Under the per-batch sync policy every commit is exactly one fsync
    // round (document creation syncs outside the round path), so failing
    // fsync #4 fails the 4th commit and nothing else.
    let dir = std::env::temp_dir().join(format!("pxml-harness-e18-single-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = std::sync::Arc::new(FaultPlan::new().fail_nth(FaultOp::Fsync, 4));
    let backend = FsBackend::with_options(
        &dir,
        FsOptions {
            fault: Some(plan.clone()),
            ..FsOptions::default()
        },
    )
    .unwrap();
    let warehouse = Warehouse::with_backend(
        std::sync::Arc::new(backend),
        SessionConfig {
            compaction: CompactionPolicy::Never,
            ..SessionConfig::default()
        },
    )
    .unwrap();
    warehouse
        .create_document("doc", parse_data_tree(&e17_document(4)).unwrap())
        .unwrap();
    let pattern = Pattern::parse("person { email }").unwrap();
    let mut acked: Vec<u64> = Vec::new();
    let mut failed_tag = None;
    let mut served_during_quarantine = false;
    for op in 0..50u64 {
        if op % 5 == 4 {
            match warehouse.commit_batch("doc", &e18_batch(op), None) {
                Ok(_) => acked.push(op),
                Err(error) => {
                    assert!(
                        warehouse.is_quarantined("doc"),
                        "commit failed without quarantining: {error}"
                    );
                    // Mid-quarantine reads serve the last durable snapshot.
                    served_during_quarantine = warehouse.query("doc", &pattern).is_ok();
                    failed_tag = Some(op);
                    warehouse.reopen_document("doc").unwrap();
                }
            }
        } else {
            let _ = warehouse.query("doc", &pattern).unwrap();
        }
    }
    assert_eq!(
        plan.injected_faults(),
        1,
        "the scheduled fault must fire once"
    );
    let failed_tag = failed_tag.expect("the scheduled fault never surfaced on a commit");
    assert!(served_during_quarantine, "quarantine blocked a reader");
    drop(warehouse);
    // Cold restart: a fresh fault-free backend replays the journal.
    let replayed = e18_journal_tags(&FsBackend::open(&dir).unwrap(), "doc");
    let exact = replayed == acked;
    println!(
        "single fault: {} commits acked, commit {failed_tag} rolled back, \
         replay holds {} (exact = {exact})",
        acked.len(),
        replayed.len()
    );
    report.row(
        "single_fault",
        &[
            ("acked_commits", (acked.len() as i64).into()),
            ("failed_tag", (failed_tag as i64).into()),
            ("replayed_commits", (replayed.len() as i64).into()),
            ("exact_prefix", exact.into()),
            (
                "reads_served_during_quarantine",
                served_during_quarantine.into(),
            ),
        ],
    );
    assert!(
        exact,
        "replay diverged from the acked prefix: {replayed:?} vs {acked:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);

    // --- part 2: seeded fault-rate sweep through the grouped pipeline -----
    let rates: &[f64] = if quick {
        &[0.0, 0.01, 0.02]
    } else {
        &[0.0, 0.005, 0.01, 0.02]
    };
    let threads = 4usize;
    let ops_per_thread = if quick { 100 } else { 200 };
    println!(
        "\nmixed 4:1 query/commit, {threads} writers x {ops_per_thread} ops, grouped \
         commits, simulated {} ms flush, retrying writers reopen on quarantine",
        E18_FSYNC_LATENCY.as_millis()
    );
    println!(
        "\n{:>8} {:>7} {:>7} {:>9} {:>8} {:>9} {:>10} {:>6}",
        "fault_%", "ops", "acked_c", "injected", "retries", "wall_ms", "goodput/s", "exact"
    );
    let mut baseline_goodput = 0.0f64;
    let mut goodput_at_1pct = 0.0f64;
    for &rate in rates {
        let dir = std::env::temp_dir().join(format!(
            "pxml-harness-e18-sweep-{}-{}",
            std::process::id(),
            (rate * 10_000.0) as u64
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Nonzero-rate plans also schedule two deterministic faults: at
        // these op counts the expected number of random hits is below one,
        // and the exactness gate must never run fault-free by luck.
        let mut chaos = FaultPlan::seeded(BENCH_SEED ^ (rate * 10_000.0) as u64)
            .fail_rate(FaultOp::Fsync, rate);
        if rate > 0.0 {
            chaos = chaos
                .fail_nth(FaultOp::Fsync, 5)
                .fail_nth(FaultOp::Fsync, 17);
        }
        let plan = std::sync::Arc::new(chaos);
        let backend = FsBackend::with_options(
            &dir,
            FsOptions {
                commit: CommitPolicy::Grouped {
                    window_max_batches: threads,
                    window_max_wait: Duration::from_millis(2),
                },
                simulated_sync_latency: E18_FSYNC_LATENCY,
                fault: Some(plan.clone()),
                ..FsOptions::default()
            },
        )
        .unwrap();
        let warehouse = Warehouse::with_backend(
            std::sync::Arc::new(backend),
            SessionConfig {
                compaction: CompactionPolicy::Never,
                ..SessionConfig::default()
            },
        )
        .unwrap();
        for t in 0..threads {
            warehouse
                .create_document(&e18_doc(t), parse_data_tree(&e17_document(4)).unwrap())
                .unwrap();
        }

        let barrier = std::sync::Barrier::new(threads);
        let started = Instant::now();
        // One writer per document: within a document, acked order is commit
        // order is replay order. A failed commit was rolled back (grouped
        // windows truncate before any ticket resolves), so retrying the
        // same tag cannot double-apply it.
        let per_thread: Vec<(Vec<u64>, usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let warehouse = &warehouse;
                    let barrier = &barrier;
                    scope.spawn(move || {
                        let doc = e18_doc(t);
                        let pattern = Pattern::parse("person { email }").unwrap();
                        let mut acked: Vec<u64> = Vec::new();
                        let mut queries_ok = 0usize;
                        let mut retries = 0usize;
                        barrier.wait();
                        for op in 0..ops_per_thread {
                            let tag = t as u64 * 1_000_000 + op as u64;
                            if op % 5 == 4 {
                                let batch = e18_batch(tag);
                                let mut attempt = 0;
                                loop {
                                    match warehouse.commit_batch(&doc, &batch, None) {
                                        Ok(_) => {
                                            acked.push(tag);
                                            break;
                                        }
                                        Err(error) => {
                                            attempt += 1;
                                            assert!(
                                                attempt < 8,
                                                "commit {tag} still failing after \
                                                 {attempt} attempts: {error}"
                                            );
                                            retries += 1;
                                            // Heal our own document; a reopen
                                            // also clears committer poison left
                                            // by a neighbour's failed window.
                                            if warehouse.is_quarantined(&doc) {
                                                let _ = warehouse.reopen_document(&doc);
                                            }
                                        }
                                    }
                                }
                            } else {
                                warehouse.query(&doc, &pattern).unwrap();
                                queries_ok += 1;
                            }
                        }
                        (acked, queries_ok, retries)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| handle.join().unwrap())
                .collect()
        });
        let wall = started.elapsed();
        drop(warehouse);

        // Cold restart over a fault-free backend: per document, the replay
        // must be exactly that writer's acked sequence.
        let fresh = FsBackend::open(&dir).unwrap();
        let mut exact = true;
        let mut acked_commits = 0usize;
        let mut acked_ops = 0usize;
        let mut total_retries = 0usize;
        for (t, (acked, queries_ok, retries)) in per_thread.iter().enumerate() {
            let replayed = e18_journal_tags(&fresh, &e18_doc(t));
            exact &= &replayed == acked;
            acked_commits += acked.len();
            acked_ops += acked.len() + queries_ok;
            total_retries += retries;
        }
        let goodput = acked_ops as f64 / wall.as_secs_f64();
        if rate == 0.0 {
            baseline_goodput = goodput;
        }
        if (rate - 0.01).abs() < 1e-12 {
            goodput_at_1pct = goodput;
        }
        println!(
            "{:>8.1} {:>7} {acked_commits:>7} {:>9} {total_retries:>8} {:>9.1} {goodput:>10.0} {exact:>6}",
            rate * 100.0,
            threads * ops_per_thread,
            plan.injected_faults(),
            ms(wall),
        );
        report.row(
            "sweep",
            &[
                ("fault_rate", rate.into()),
                ("ops", ((threads * ops_per_thread) as i64).into()),
                ("acked_commits", (acked_commits as i64).into()),
                ("injected_faults", (plan.injected_faults() as i64).into()),
                ("commit_retries", (total_retries as i64).into()),
                ("wall_ms", ms(wall).into()),
                ("goodput_ops_per_s", goodput.into()),
                ("exact_prefix", exact.into()),
            ],
        );
        assert!(
            exact,
            "rate {rate}: cold-restart replay diverged from the acked prefix"
        );
        // The commit volume guarantees at least 17 fsync rounds (windows
        // hold at most `threads` batches), so both scheduled faults fired.
        if rate > 0.0 {
            assert!(
                plan.injected_faults() >= 2,
                "rate {rate}: the scheduled faults never fired — the sweep ran fault-free"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let degradation = goodput_at_1pct / baseline_goodput;
    println!(
        "\ndegradation: {baseline_goodput:.0} -> {goodput_at_1pct:.0} acked ops/s at 1% \
         faults ({:.0}% of baseline)",
        degradation * 100.0
    );
    report.row(
        "degradation",
        &[
            ("baseline_goodput_ops_per_s", baseline_goodput.into()),
            ("goodput_at_1pct_ops_per_s", goodput_at_1pct.into()),
            ("ratio", degradation.into()),
        ],
    );
    // The gate: recovery (rollback + quarantine + reopen replay) must cost
    // bounded goodput, not collapse the service.
    assert!(
        degradation >= 0.70,
        "goodput at 1% faults fell to {:.0}% of the fault-free baseline",
        degradation * 100.0
    );
    println!();
}
