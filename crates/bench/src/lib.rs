//! Shared workload builders for the benchmarks and the experiment harness.
//!
//! Every experiment (E1–E10, described in the doc comments of
//! `src/bin/harness.rs`) gets its inputs from here so that the Criterion
//! benches (`benches/`) and the table-printing harness measure exactly the
//! same workloads.

use pxml_core::{FuzzyTree, Update, UpdateTransaction};
use pxml_event::{Condition, EventId, Literal};
use pxml_gen::{
    derived_query, random_fuzzy_tree, random_tree, random_update, FuzzyGenConfig, QueryGenConfig,
    TreeGenConfig, UpdateGenConfig,
};
use pxml_query::{PNodeId, Pattern};
use pxml_tree::Tree;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The fixed seed used by every benchmark workload (reproducibility).
pub const BENCH_SEED: u64 = 0x5eed_cafe;

/// A random plain document with roughly `elements` element nodes.
pub fn document(elements: usize, seed: u64) -> Tree {
    let mut rng = StdRng::seed_from_u64(seed);
    random_tree(&mut rng, &TreeGenConfig::sized(elements))
}

/// A random fuzzy document with roughly `elements` element nodes and
/// `events` probabilistic events.
pub fn fuzzy_document(elements: usize, events: usize, seed: u64) -> FuzzyTree {
    let mut rng = StdRng::seed_from_u64(seed);
    random_fuzzy_tree(&mut rng, &FuzzyGenConfig::sized(elements, events))
}

/// A query derived from `tree` (guaranteed to match) with the given number of
/// pattern nodes.
pub fn query_for(tree: &Tree, pattern_nodes: usize, seed: u64) -> Pattern {
    let mut rng = StdRng::seed_from_u64(seed);
    derived_query(
        &mut rng,
        tree,
        &QueryGenConfig {
            pattern_nodes,
            descendant_probability: 0.3,
            value_probability: 0.2,
            join_probability: 0.1,
            wildcard_probability: 0.1,
        },
    )
}

/// A random probabilistic update derived from `tree`.
pub fn update_for(tree: &Tree, seed: u64) -> UpdateTransaction {
    let mut rng = StdRng::seed_from_u64(seed);
    random_update(&mut rng, tree, &UpdateGenConfig::default())
}

/// An insert-only probabilistic update derived from `tree` (used by E4 where
/// the paper notes that insertions are the easy case).
pub fn insert_update_for(tree: &Tree, seed: u64) -> UpdateTransaction {
    let mut rng = StdRng::seed_from_u64(seed);
    random_update(
        &mut rng,
        tree,
        &UpdateGenConfig {
            insert_probability: 1.0,
            delete_probability: 0.0,
            ..UpdateGenConfig::default()
        },
    )
}

/// The slide-12 example document.
pub fn slide12() -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("A");
    let w1 = fuzzy.add_event("w1", 0.8).expect("fresh table");
    let w2 = fuzzy.add_event("w2", 0.7).expect("fresh table");
    let root = fuzzy.root();
    let b = fuzzy.add_element(root, "B");
    fuzzy
        .set_condition(
            b,
            Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
        )
        .expect("not the root");
    fuzzy.add_element(root, "C");
    let d = fuzzy.add_element(root, "D");
    fuzzy
        .set_condition(d, Condition::from_literal(Literal::pos(w2)))
        .expect("not the root");
    fuzzy
}

/// The document used by the deletion-growth experiment (E5): a root with
/// `rounds` independent uncertain `B_k` children and a single `C` child.
pub fn deletion_growth_document(rounds: usize) -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("A");
    let root = fuzzy.root();
    for k in 1..=rounds {
        let event = fuzzy
            .add_event(format!("x{k}"), 0.5)
            .expect("fresh event names");
        let b = fuzzy.add_element(root, format!("B{k}"));
        fuzzy
            .set_condition(b, Condition::from_literal(Literal::pos(event)))
            .expect("not the root");
    }
    fuzzy.add_element(root, "C");
    fuzzy
}

/// The `k`-th chained conditional deletion of the growth experiment.
pub fn deletion_growth_step(k: usize) -> UpdateTransaction {
    let pattern = Pattern::parse(&format!("/A {{ B{k}, C }}")).expect("static query");
    let ids: Vec<PNodeId> = pattern.node_ids().collect();
    UpdateTransaction::new(pattern, 0.5)
        .expect("valid confidence")
        .with_delete(ids[2])
}

/// The E8 data-cleaning workload: every person carries `phones` uncertain
/// phones and one uncertain email, then `rounds` cleaning transactions
/// retract the email of every person who has *a* phone (confidence 0.9).
///
/// Each retraction matches once per phone with a shared confidence event, so
/// the deletion fragments every email's survivor condition into
/// pairwise-disjoint pieces that are not pairwise mergeable — the realistic
/// shape the simplifier's group re-cover wins back (experiment E8).
pub fn cleaning_history(people: usize, phones: usize, rounds: usize) -> FuzzyTree {
    let mut fuzzy = FuzzyTree::new("directory");
    let root = fuzzy.root();
    for p in 0..people {
        let person = fuzzy.add_element(root, "person");
        let name = fuzzy.add_element(person, "name");
        fuzzy.add_text(name, format!("person-{p}"));
        for i in 0..phones {
            let w = fuzzy
                .add_event(format!("w{p}_{i}"), 0.7)
                .expect("fresh event names");
            let phone = fuzzy.add_element(person, "phone");
            fuzzy.add_text(phone, format!("+33-{p}-{i}"));
            fuzzy
                .set_condition(phone, Condition::from_literal(Literal::pos(w)))
                .expect("not the root");
        }
        let v = fuzzy
            .add_event(format!("v{p}"), 0.8)
            .expect("fresh event names");
        let email = fuzzy.add_element(person, "email");
        fuzzy.add_text(email, format!("p{p}@example.org"));
        fuzzy
            .set_condition(email, Condition::from_literal(Literal::pos(v)))
            .expect("not the root");
    }
    for _ in 0..rounds {
        let pattern = Pattern::parse("person { phone, email }").expect("static query");
        let email_node = pattern.node_ids().nth(2).expect("email is the third node");
        Update::matching(pattern)
            .delete_at(email_node)
            .with_confidence(0.9)
            .build()
            .expect("valid confidence")
            .apply_to_fuzzy(&mut fuzzy)
            .expect("update applies");
    }
    fuzzy
}

/// The E13 merged-answer workload: a root with `matches` same-body uncertain
/// `a` children whose conditions together span `events` distinct events
/// (each condition conjoins `literals_per_match` distinct literals, signs
/// mixed). The query `r { a }` then yields `matches` matches that all merge
/// into **one** answer group, so the group's probability is the exact
/// disjunction of all the conditions — the computation whose cost separates
/// the BDD engine (linear in diagram size) from Shannon expansion
/// (exponential in `events`).
pub fn merged_answer_document(
    matches: usize,
    events: usize,
    literals_per_match: usize,
    seed: u64,
) -> FuzzyTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut fuzzy = FuzzyTree::new("r");
    let ids: Vec<EventId> = (0..events)
        .map(|i| {
            let probability = rand::Rng::gen_range(&mut rng, 0.05..0.95);
            fuzzy
                .add_event(format!("e{i}"), probability)
                .expect("fresh event names")
        })
        .collect();
    let root = fuzzy.root();
    for m in 0..matches {
        let node = fuzzy.add_element(root, "a");
        let literals = (0..literals_per_match).map(|j| {
            // A contiguous window of events per condition: distinct within
            // one condition, sweeping the full event set across the group —
            // the locality match conditions inherit from shared ancestor
            // chains (and what keeps the union's BDD near-linear; scattered
            // events would make the diagram itself blow up).
            let event = ids[(m + j) % events];
            if (m + j) % 3 == 0 {
                Literal::neg(event)
            } else {
                Literal::pos(event)
            }
        });
        fuzzy
            .set_condition(node, Condition::from_literals(literals))
            .expect("not the root");
    }
    fuzzy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        let a = document(100, 1);
        let b = document(100, 1);
        assert!(a.isomorphic(&b));
        let fa = fuzzy_document(50, 4, 2);
        let fb = fuzzy_document(50, 4, 2);
        assert!(fa.semantically_equivalent(&fb, 1e-12).unwrap());
    }

    #[test]
    fn derived_queries_and_updates_select_their_documents() {
        let tree = document(150, 3);
        let query = query_for(&tree, 4, 4);
        assert!(!query.find_matches(&tree).is_empty());
        let update = update_for(&tree, 5);
        assert!(!update.pattern().find_matches(&tree).is_empty());
        let insert = insert_update_for(&tree, 6);
        assert!(insert
            .operations()
            .iter()
            .all(|op| matches!(op, pxml_core::UpdateOperation::Insert { .. })));
    }

    #[test]
    fn merged_answer_document_yields_one_group_spanning_all_events() {
        let fuzzy = merged_answer_document(12, 12, 3, 7);
        let query = Pattern::parse("r { a }").unwrap();
        let result = fuzzy.query(&query);
        assert_eq!(result.len(), 12);
        let merged = result.merged_answers(fuzzy.events());
        assert_eq!(merged.len(), 1, "same-body matches must merge");
        let mentioned: std::collections::BTreeSet<_> = result
            .matches
            .iter()
            .flat_map(|m| m.condition.events())
            .collect();
        assert_eq!(mentioned.len(), 12, "the group must span every event");
        assert!(merged[0].1 > 0.0 && merged[0].1 <= 1.0);
    }

    #[test]
    fn growth_workload_doubles_copies() {
        let mut fuzzy = deletion_growth_document(3);
        for k in 1..=3 {
            deletion_growth_step(k).apply_to_fuzzy(&mut fuzzy).unwrap();
        }
        assert_eq!(fuzzy.tree().find_elements("C").len(), 8);
    }
}
