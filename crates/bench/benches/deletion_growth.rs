//! E5 — the exponential growth caused by chained conditional deletions with
//! complex dependencies, and the cost of keeping it in check with the
//! simplifier.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{deletion_growth_document, deletion_growth_step};
use pxml_core::Simplifier;

fn bench_deletion_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_deletion_growth");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for rounds in [4usize, 6, 8] {
        group.bench_with_input(BenchmarkId::new("raw", rounds), &rounds, |b, &rounds| {
            b.iter(|| {
                let mut fuzzy = deletion_growth_document(rounds);
                for k in 1..=rounds {
                    deletion_growth_step(k).apply_to_fuzzy(&mut fuzzy).unwrap();
                }
                fuzzy.node_count()
            })
        });
        group.bench_with_input(
            BenchmarkId::new("with_simplification", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut fuzzy = deletion_growth_document(rounds);
                    for k in 1..=rounds {
                        deletion_growth_step(k).apply_to_fuzzy(&mut fuzzy).unwrap();
                        Simplifier::new().run(&mut fuzzy).unwrap();
                    }
                    fuzzy.node_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_deletion_growth);
criterion_main!(benches);
