//! E7 — warehouse end-to-end: update ingestion, query evaluation and recovery
//! on the people-directory scenario.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::BENCH_SEED;
use pxml_gen::scenarios::{extraction_update, people_directory, PeopleScenarioConfig};
use pxml_query::Pattern;
use pxml_warehouse::{Warehouse, WarehouseConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pxml-bench-warehouse-{}-{tag}", std::process::id()))
}

fn bench_warehouse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_warehouse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for people in [50usize, 200] {
        let scenario = PeopleScenarioConfig {
            people,
            ..PeopleScenarioConfig::default()
        };

        // Ingest a batch of extraction updates.
        group.bench_with_input(
            BenchmarkId::new("ingest_20_updates", people),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let dir = scratch(&format!("ingest-{people}"));
                    let _ = std::fs::remove_dir_all(&dir);
                    let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
                    warehouse
                        .create_document("people", people_directory(scenario))
                        .unwrap();
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    for _ in 0..20 {
                        let (update, _) = extraction_update(&mut rng, scenario);
                        warehouse.update("people", &update).unwrap();
                    }
                    let count = warehouse.stats().updates_applied;
                    let _ = std::fs::remove_dir_all(&dir);
                    count
                })
            },
        );

        // Query a warehouse that already absorbed a workload.
        let dir = scratch(&format!("query-{people}"));
        let _ = std::fs::remove_dir_all(&dir);
        let warehouse = Warehouse::open(&dir, WarehouseConfig::default()).unwrap();
        warehouse
            .create_document("people", people_directory(&scenario))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(BENCH_SEED + 1);
        for _ in 0..40 {
            let (update, _) = extraction_update(&mut rng, &scenario);
            warehouse.update("people", &update).unwrap();
        }
        let query = Pattern::parse("person { phone }").unwrap();
        group.bench_with_input(
            BenchmarkId::new("query_phone", people),
            &(&warehouse, &query),
            |b, (warehouse, query)| b.iter(|| warehouse.query("people", query).unwrap().len()),
        );
        drop(warehouse);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_warehouse);
criterion_main!(benches);
