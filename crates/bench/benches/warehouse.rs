//! E7 — warehouse end-to-end: update ingestion, query evaluation and recovery
//! on the people-directory scenario, through the session API.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::BENCH_SEED;
use pxml_gen::scenarios::{extraction_update, people_directory, PeopleScenarioConfig};
use pxml_query::Pattern;
use pxml_warehouse::{Session, SessionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scratch(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pxml-bench-warehouse-{}-{tag}", std::process::id()))
}

fn bench_warehouse(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_warehouse");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(2));

    for people in [50usize, 200] {
        let scenario = PeopleScenarioConfig {
            people,
            ..PeopleScenarioConfig::default()
        };

        // Ingest a batch of extraction updates: one staged txn per batch of
        // five, committed atomically.
        group.bench_with_input(
            BenchmarkId::new("ingest_20_updates", people),
            &scenario,
            |b, scenario| {
                b.iter(|| {
                    let dir = scratch(&format!("ingest-{people}"));
                    let _ = std::fs::remove_dir_all(&dir);
                    let session = Session::open(&dir, SessionConfig::default()).unwrap();
                    let doc = session
                        .create("people", people_directory(scenario))
                        .unwrap();
                    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
                    for _ in 0..4 {
                        let mut txn = doc.begin();
                        for _ in 0..5 {
                            let (update, _) = extraction_update(&mut rng, scenario);
                            txn = txn.stage(update);
                        }
                        txn.commit().unwrap();
                    }
                    let count = session.stats().updates_applied;
                    let _ = std::fs::remove_dir_all(&dir);
                    count
                })
            },
        );

        // Query a document that already absorbed a workload.
        let dir = scratch(&format!("query-{people}"));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let doc = session
            .create("people", people_directory(&scenario))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(BENCH_SEED + 1);
        for _ in 0..40 {
            let (update, _) = extraction_update(&mut rng, &scenario);
            doc.begin().stage(update).commit().unwrap();
        }
        let query = Pattern::parse("person { phone }").unwrap();
        group.bench_with_input(
            BenchmarkId::new("query_phone", people),
            &(&doc, &query),
            |b, (doc, query)| b.iter(|| doc.query(query).unwrap().len()),
        );
        drop(doc);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

criterion_group!(benches, bench_warehouse);
criterion_main!(benches);
