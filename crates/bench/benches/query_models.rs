//! E3 — querying the fuzzy tree directly versus materialising the possible
//! worlds and querying each of them (the paper's motivation for the
//! fuzzy-tree representation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{fuzzy_document, query_for, BENCH_SEED};

fn bench_query_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_query_models");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for events in [4usize, 8, 12] {
        let fuzzy = fuzzy_document(60, events, BENCH_SEED + 100 + events as u64);
        let query = query_for(fuzzy.tree(), 3, BENCH_SEED + events as u64);
        group.bench_with_input(
            BenchmarkId::new("fuzzy_query", events),
            &(&fuzzy, &query),
            |b, (fuzzy, query)| b.iter(|| fuzzy.query(query).len()),
        );
        group.bench_with_input(
            BenchmarkId::new("worlds_query", events),
            &(&fuzzy, &query),
            |b, (fuzzy, query)| b.iter(|| fuzzy.to_possible_worlds().unwrap().query(query).len()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_models);
criterion_main!(benches);
