//! E9 — TPWJ evaluation scaling with document size and pattern size, plus the
//! naive-versus-indexed matcher ablation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{document, query_for, BENCH_SEED};
use pxml_query::MatchStrategy;

fn bench_query_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_query_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for size in [200usize, 2000, 10_000] {
        let tree = document(size, BENCH_SEED + size as u64);
        for pattern_nodes in [2usize, 4] {
            let query = query_for(&tree, pattern_nodes, BENCH_SEED + pattern_nodes as u64);
            group.bench_with_input(
                BenchmarkId::new(format!("naive_p{pattern_nodes}"), size),
                &(&tree, &query),
                |b, (tree, query)| {
                    b.iter(|| query.find_matches_with(tree, MatchStrategy::Naive).len())
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("indexed_p{pattern_nodes}"), size),
                &(&tree, &query),
                |b, (tree, query)| {
                    b.iter(|| query.find_matches_with(tree, MatchStrategy::Indexed).len())
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_query_scaling);
criterion_main!(benches);
