//! E8 — simplification effectiveness and cost on documents grown by update
//! histories.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{deletion_growth_document, deletion_growth_step, BENCH_SEED};
use pxml_core::{FuzzyTree, Simplifier};
use pxml_gen::scenarios::{extraction_update, people_directory, PeopleScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grown_by_extraction(updates: usize) -> FuzzyTree {
    let scenario = PeopleScenarioConfig {
        people: 20,
        ..PeopleScenarioConfig::default()
    };
    let mut fuzzy = FuzzyTree::from_tree(people_directory(&scenario));
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    for _ in 0..updates {
        let (update, _) = extraction_update(&mut rng, &scenario);
        update.apply_to_fuzzy(&mut fuzzy).unwrap();
    }
    fuzzy
}

fn grown_by_deletions(rounds: usize) -> FuzzyTree {
    let mut fuzzy = deletion_growth_document(rounds);
    for k in 1..=rounds {
        deletion_growth_step(k).apply_to_fuzzy(&mut fuzzy).unwrap();
    }
    fuzzy
}

fn bench_simplify(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_simplify");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for updates in [20usize, 60] {
        let fuzzy = grown_by_extraction(updates);
        group.bench_with_input(
            BenchmarkId::new("extraction_history", updates),
            &fuzzy,
            |b, fuzzy| {
                b.iter(|| {
                    let mut copy = fuzzy.clone();
                    Simplifier::new().run(&mut copy).unwrap();
                    copy.condition_literal_count()
                })
            },
        );
    }
    for rounds in [6usize, 8] {
        let fuzzy = grown_by_deletions(rounds);
        group.bench_with_input(
            BenchmarkId::new("deletion_history", rounds),
            &fuzzy,
            |b, fuzzy| {
                b.iter(|| {
                    let mut copy = fuzzy.clone();
                    Simplifier::new().run(&mut copy).unwrap();
                    copy.node_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simplify);
criterion_main!(benches);
