//! E2 — cost of expanding a fuzzy tree into its possible worlds, as a
//! function of the number of probabilistic events (exponential, by design:
//! this is the cost the fuzzy-tree representation avoids).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{fuzzy_document, slide12, BENCH_SEED};

fn bench_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_expansion");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    group.bench_function("slide12", |b| {
        let fuzzy = slide12();
        b.iter(|| fuzzy.to_possible_worlds().unwrap().len())
    });

    for events in [4usize, 8, 12] {
        let fuzzy = fuzzy_document(40, events, BENCH_SEED + events as u64);
        group.bench_with_input(BenchmarkId::new("events", events), &fuzzy, |b, fuzzy| {
            b.iter(|| fuzzy.to_possible_worlds().unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_expansion);
criterion_main!(benches);
