//! E4 — cost of probabilistic update transactions on fuzzy trees: insert-only
//! transactions (the easy case the paper highlights) versus mixed
//! insert/delete transactions, as the document grows.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pxml_bench::{document, insert_update_for, update_for, BENCH_SEED};
use pxml_core::FuzzyTree;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_updates");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for size in [100usize, 1000, 4000] {
        let tree = document(size, BENCH_SEED + size as u64);
        let insert = insert_update_for(&tree, BENCH_SEED + 1);
        let mixed = update_for(&tree, BENCH_SEED + 2);
        group.bench_with_input(
            BenchmarkId::new("insert_only", size),
            &(&tree, &insert),
            |b, (tree, update)| {
                b.iter(|| {
                    let mut fuzzy = FuzzyTree::from_tree((*tree).clone());
                    update.apply_to_fuzzy(&mut fuzzy).unwrap().inserted_nodes
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("insert_and_delete", size),
            &(&tree, &mixed),
            |b, (tree, update)| {
                b.iter(|| {
                    let mut fuzzy = FuzzyTree::from_tree((*tree).clone());
                    update.apply_to_fuzzy(&mut fuzzy).unwrap().applied_matches
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
