//! Error types for tree manipulation and XML parsing.

use std::fmt;

/// Errors produced by [`crate::Tree`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node id does not refer to a live node of this tree.
    InvalidNode(u32),
    /// The requested operation would detach or delete the root.
    CannotRemoveRoot,
    /// Attempted to give children to a text node.
    TextNodeHasNoChildren(u32),
    /// The tree violates the paper's data model (e.g. mixed content).
    DataModelViolation(String),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::InvalidNode(id) => write!(f, "invalid or deleted node id {id}"),
            TreeError::CannotRemoveRoot => write!(f, "the root of a data tree cannot be removed"),
            TreeError::TextNodeHasNoChildren(id) => {
                write!(f, "text node {id} cannot have children")
            }
            TreeError::DataModelViolation(msg) => write!(f, "data model violation: {msg}"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Errors produced by the XML parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Human-readable description of the problem.
    pub message: String,
    /// 1-based line of the error location.
    pub line: usize,
    /// 1-based column of the error location.
    pub column: usize,
}

impl XmlError {
    /// Creates a new error at the given location.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        XmlError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_error_display() {
        assert_eq!(
            TreeError::InvalidNode(3).to_string(),
            "invalid or deleted node id 3"
        );
        assert_eq!(
            TreeError::CannotRemoveRoot.to_string(),
            "the root of a data tree cannot be removed"
        );
        assert!(TreeError::DataModelViolation("x".into())
            .to_string()
            .contains("x"));
        assert!(TreeError::TextNodeHasNoChildren(7)
            .to_string()
            .contains('7'));
    }

    #[test]
    fn xml_error_display() {
        let e = XmlError::new("unexpected end of input", 2, 14);
        assert_eq!(e.to_string(), "XML error at 2:14: unexpected end of input");
        assert_eq!(e.line, 2);
        assert_eq!(e.column, 14);
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&TreeError::CannotRemoveRoot);
        assert_err(&XmlError::new("x", 1, 1));
    }
}
