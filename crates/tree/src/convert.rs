//! Conversion between XML documents and the paper's data trees.
//!
//! The paper's model makes **no distinction between attribute and element
//! nodes**: when importing an XML document, every attribute `name="value"` of
//! an element becomes a child element `<name>` with a single text child
//! `value`. Text content becomes text nodes (whitespace-trimmed), comments
//! are dropped. Exporting a data tree to XML is the inverse, except that
//! former attributes stay elements (the distinction is deliberately lost).

use crate::error::XmlError;
use crate::label::Label;
use crate::tree::{NodeId, Tree};
use crate::xml::{parse, XmlDocument, XmlElement, XmlNode};

/// Converts a parsed XML document into a data tree.
pub fn xml_to_data_tree(doc: &XmlDocument) -> Tree {
    let mut tree = Tree::new(Label::Element(doc.root.name.clone()));
    let root = tree.root();
    convert_children(&doc.root, &mut tree, root);
    tree
}

fn convert_children(element: &XmlElement, tree: &mut Tree, node: NodeId) {
    for (name, value) in &element.attributes {
        let attr_node = tree.add_element(node, name.clone());
        tree.add_text(attr_node, value.clone());
    }
    for child in &element.children {
        match child {
            XmlNode::Element(el) => {
                let child_node = tree.add_element(node, el.name.clone());
                convert_children(el, tree, child_node);
            }
            XmlNode::Text(text) => {
                let trimmed = text.trim();
                if !trimmed.is_empty() {
                    tree.add_text(node, trimmed.to_string());
                }
            }
            XmlNode::Comment(_) => {}
        }
    }
}

/// Converts a data tree into an XML document (all nodes become elements or
/// text; no attributes are produced).
pub fn data_tree_to_xml(tree: &Tree) -> XmlDocument {
    let root = build_element(tree, tree.root());
    XmlDocument::new(root)
}

fn build_element(tree: &Tree, node: NodeId) -> XmlElement {
    let name = tree
        .label(node)
        .element_name()
        .unwrap_or("text")
        .to_string();
    let mut element = XmlElement::new(name);
    for &child in tree.children(node) {
        match tree.label(child) {
            Label::Element(_) => element
                .children
                .push(XmlNode::Element(build_element(tree, child))),
            Label::Text(value) => element.children.push(XmlNode::Text(value.clone())),
        }
    }
    element
}

/// Parses an XML string directly into a data tree.
pub fn parse_data_tree(input: &str) -> Result<Tree, XmlError> {
    Ok(xml_to_data_tree(&parse(input)?))
}

/// Serializes a data tree to XML text (pretty-printed when `pretty` is true).
pub fn write_data_tree(tree: &Tree, pretty: bool) -> String {
    data_tree_to_xml(tree).to_xml_string(pretty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_text_convert() {
        let tree = parse_data_tree("<a><b>foo</b><c/></a>").unwrap();
        assert_eq!(tree.node_count(), 4);
        let b = tree.find_elements("b")[0];
        assert_eq!(tree.node_value(b), Some("foo"));
        assert!(tree.check_data_model().is_ok());
    }

    #[test]
    fn attributes_become_child_nodes() {
        let tree = parse_data_tree(r#"<person name="Alan" born="1912"/>"#).unwrap();
        // person + 2 attribute elements + 2 text nodes
        assert_eq!(tree.node_count(), 5);
        let name = tree.find_elements("name")[0];
        assert_eq!(tree.node_value(name), Some("Alan"));
        let born = tree.find_elements("born")[0];
        assert_eq!(tree.node_value(born), Some("1912"));
    }

    #[test]
    fn attribute_and_element_with_same_name_are_indistinguishable() {
        let from_attr = parse_data_tree(r#"<a x="1"/>"#).unwrap();
        let from_elem = parse_data_tree("<a><x>1</x></a>").unwrap();
        assert!(from_attr.isomorphic(&from_elem));
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let tree = parse_data_tree("<a>\n  <b>  padded  </b>\n</a>").unwrap();
        let b = tree.find_elements("b")[0];
        assert_eq!(tree.node_value(b), Some("padded"));
        assert_eq!(tree.node_count(), 3);
    }

    #[test]
    fn comments_are_dropped() {
        let tree = parse_data_tree("<a><!-- note --><b/></a>").unwrap();
        assert_eq!(tree.node_count(), 2);
    }

    #[test]
    fn round_trip_through_xml_preserves_isomorphism() {
        let original = parse_data_tree(
            r#"<library>
                 <book year="1936"><title>On Computable Numbers</title></book>
                 <book year="1948"><title>Cybernetics</title></book>
               </library>"#,
        )
        .unwrap();
        let xml = write_data_tree(&original, true);
        let reparsed = parse_data_tree(&xml).unwrap();
        assert!(original.isomorphic(&reparsed));
    }

    #[test]
    fn export_produces_expected_shape() {
        let mut tree = Tree::new("a");
        let b = tree.add_element(tree.root(), "b");
        tree.add_text(b, "foo");
        tree.add_element(tree.root(), "c");
        let xml = write_data_tree(&tree, false);
        assert!(xml.contains("<a>"));
        assert!(xml.contains("<b>foo</b>"));
        assert!(xml.contains("<c/>"));
    }

    #[test]
    fn special_characters_survive_round_trip() {
        let mut tree = Tree::new("a");
        let b = tree.add_element(tree.root(), "b");
        tree.add_text(b, "1 < 2 & \"three\"");
        let xml = write_data_tree(&tree, true);
        let reparsed = parse_data_tree(&xml).unwrap();
        assert!(tree.isomorphic(&reparsed));
    }
}
