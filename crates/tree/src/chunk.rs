//! Chunked copy-on-write storage for arena slots.
//!
//! A [`ChunkedVec`] is a growable sequence split into fixed-size chunks, each
//! behind an [`Arc`]. Cloning the vector clones only the spine of chunk
//! pointers, so a clone is O(len / CHUNK) reference-count bumps and shares
//! every chunk with the original. Mutation goes through [`Arc::make_mut`]:
//! the first write into a shared chunk copies that one chunk (at most
//! [`ChunkedVec::CHUNK`] elements) and leaves every other chunk shared.
//!
//! This is what makes a [`crate::Tree`] snapshot cheap: a commit that touches
//! k nodes copies O(k) chunks, not the whole arena, and readers holding an
//! older clone keep seeing their original chunks untouched.

use std::fmt;
use std::sync::Arc;

/// A chunked vector with copy-on-write structural sharing between clones.
pub struct ChunkedVec<T> {
    chunks: Vec<Arc<Vec<T>>>,
    len: usize,
    /// Number of chunk copies this handle has performed to un-share a chunk
    /// before writing. Carried across clones; measure deltas to bound the
    /// copy work of a mutation batch.
    copies: u64,
}

impl<T: Clone> ChunkedVec<T> {
    /// Elements per chunk. The unit of copy-on-write granularity: writing
    /// into a shared chunk copies at most this many elements.
    pub const CHUNK: usize = 64;

    /// Creates an empty vector.
    pub fn new() -> Self {
        ChunkedVec {
            chunks: Vec::new(),
            len: 0,
            copies: 0,
        }
    }

    /// The number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Cumulative count of chunks copied to un-share them before a write,
    /// through this handle and the handles it was cloned from.
    ///
    /// **Pitfall:** `FuzzyTree` compaction (the commit-time arena rebuild
    /// that reclaims dead slots once they exceed `2 × live + slack`)
    /// constructs a *fresh* `ChunkedVec` and repopulates it with `push`,
    /// so the rebuilt handle's counter restarts near zero — the copies
    /// performed before compaction are not carried over. Tests that bound
    /// copy-on-write work by measuring counter deltas across commits must
    /// keep their workloads below the compaction threshold (few enough
    /// deletions that no rebuild triggers), or the delta silently
    /// undercounts.
    pub fn chunk_copies(&self) -> u64 {
        self.copies
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        let offset = self.len % Self::CHUNK;
        if offset == 0 {
            let mut chunk = Vec::with_capacity(Self::CHUNK);
            chunk.push(value);
            self.chunks.push(Arc::new(chunk));
        } else {
            let last = self.chunks.len() - 1;
            self.chunk_mut(last).push(value);
        }
        self.len += 1;
    }

    /// A shared reference to the element at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            return None;
        }
        Some(&self.chunks[index / Self::CHUNK][index % Self::CHUNK])
    }

    /// A mutable reference to the element at `index`, un-sharing (and
    /// counting the copy of) its chunk if clones still reference it.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        if index >= self.len {
            return None;
        }
        let chunk = self.chunk_mut(index / Self::CHUNK);
        Some(&mut chunk[index % Self::CHUNK])
    }

    /// Iterates over the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.chunks.iter().flat_map(|chunk| chunk.iter())
    }

    fn chunk_mut(&mut self, chunk_index: usize) -> &mut Vec<T> {
        if Arc::get_mut(&mut self.chunks[chunk_index]).is_none() {
            self.copies += 1;
        }
        Arc::make_mut(&mut self.chunks[chunk_index])
    }
}

impl<T: Clone> Default for ChunkedVec<T> {
    fn default() -> Self {
        ChunkedVec::new()
    }
}

impl<T> Clone for ChunkedVec<T> {
    fn clone(&self) -> Self {
        ChunkedVec {
            chunks: self.chunks.clone(),
            len: self.len,
            copies: self.copies,
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for ChunkedVec<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.chunks.iter().flat_map(|chunk| chunk.iter()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_and_len() {
        let mut v = ChunkedVec::new();
        assert!(v.is_empty());
        for i in 0..200usize {
            v.push(i);
        }
        assert_eq!(v.len(), 200);
        assert_eq!(v.get(0), Some(&0));
        assert_eq!(v.get(63), Some(&63));
        assert_eq!(v.get(64), Some(&64));
        assert_eq!(v.get(199), Some(&199));
        assert_eq!(v.get(200), None);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn clone_shares_chunks_until_written() {
        let mut v = ChunkedVec::new();
        for i in 0..300usize {
            v.push(i);
        }
        let baseline = v.chunk_copies();
        let mut snapshot = v.clone();
        // Reading never copies.
        assert_eq!(snapshot.get(128), Some(&128));
        assert_eq!(snapshot.chunk_copies(), baseline);
        // Writing one element copies exactly the chunk that holds it.
        *snapshot.get_mut(128).unwrap() = 999;
        assert_eq!(snapshot.chunk_copies(), baseline + 1);
        // The original still sees the old value.
        assert_eq!(v.get(128), Some(&128));
        assert_eq!(snapshot.get(128), Some(&999));
        // A second write into the now-owned chunk copies nothing further.
        *snapshot.get_mut(129).unwrap() = 1000;
        assert_eq!(snapshot.chunk_copies(), baseline + 1);
    }

    #[test]
    fn push_after_clone_unshares_only_the_tail_chunk() {
        let mut v = ChunkedVec::new();
        for i in 0..100usize {
            v.push(i);
        }
        let mut fork = v.clone();
        let baseline = fork.chunk_copies();
        fork.push(100);
        // 100 lives at offset 36 of the second chunk, which was shared.
        assert_eq!(fork.chunk_copies(), baseline + 1);
        assert_eq!(v.len(), 100);
        assert_eq!(fork.len(), 101);
        assert_eq!(fork.get(100), Some(&100));
        assert_eq!(v.get(100), None);
    }

    #[test]
    fn pushing_a_fresh_chunk_copies_nothing() {
        let mut v: ChunkedVec<usize> = ChunkedVec::new();
        for i in 0..ChunkedVec::<usize>::CHUNK {
            v.push(i);
        }
        let fork_base = v.clone();
        let mut fork = fork_base.clone();
        let baseline = fork.chunk_copies();
        // len is a multiple of CHUNK, so the next push opens a new chunk and
        // never touches the shared ones.
        fork.push(12345);
        assert_eq!(fork.chunk_copies(), baseline);
    }
}
