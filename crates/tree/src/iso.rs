//! Unordered tree isomorphism via canonical forms.
//!
//! Because the paper's data trees are unordered, two trees are equal when one
//! can be obtained from the other by permuting siblings. We decide this by
//! computing a *canonical string* for every subtree: the canonical string of
//! a node is its label followed by the **sorted** canonical strings of its
//! children. Two subtrees are isomorphic iff their canonical strings are
//! equal, and the canonical string also provides a stable hash and total
//! order on trees (used to normalise possible-world sets deterministically).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::label::Label;
use crate::tree::{NodeId, Tree};

/// The canonical form of a tree: a string that is identical for isomorphic
/// trees and different for non-isomorphic ones, plus a precomputed hash.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CanonicalForm {
    repr: String,
    hash: u64,
}

impl CanonicalForm {
    /// Computes the canonical form of a whole tree.
    pub fn of_tree(tree: &Tree) -> Self {
        Self::of_subtree(tree, tree.root())
    }

    /// Computes the canonical form of the subtree rooted at `node`.
    pub fn of_subtree(tree: &Tree, node: NodeId) -> Self {
        let repr = subtree_canonical_string(tree, node);
        let mut hasher = DefaultHasher::new();
        repr.hash(&mut hasher);
        CanonicalForm {
            hash: hasher.finish(),
            repr,
        }
    }

    /// The canonical string itself.
    pub fn as_str(&self) -> &str {
        &self.repr
    }

    /// A 64-bit hash of the canonical string.
    pub fn hash_value(&self) -> u64 {
        self.hash
    }
}

impl Hash for CanonicalForm {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash.hash(state);
    }
}

fn escape(label: &str, out: &mut String) {
    // The canonical string uses '(', ')', ',' and '|' as structure characters;
    // escape occurrences inside labels so distinct labels cannot collide.
    for ch in label.chars() {
        if matches!(ch, '(' | ')' | ',' | '|' | '\\') {
            out.push('\\');
        }
        out.push(ch);
    }
}

fn label_prefix(label: &Label, out: &mut String) {
    match label {
        Label::Element(name) => {
            out.push('e');
            out.push('|');
            escape(name, out);
        }
        Label::Text(value) => {
            out.push('t');
            out.push('|');
            escape(value, out);
        }
    }
}

/// The canonical string of the subtree of `tree` rooted at `node`.
pub fn subtree_canonical_string(tree: &Tree, node: NodeId) -> String {
    let mut out = String::new();
    write_canonical(tree, node, &mut out);
    out
}

/// The canonical string of the whole tree.
pub fn canonical_string(tree: &Tree) -> String {
    subtree_canonical_string(tree, tree.root())
}

fn write_canonical(tree: &Tree, node: NodeId, out: &mut String) {
    label_prefix(tree.label(node), out);
    let children = tree.children(node);
    if children.is_empty() {
        return;
    }
    let mut child_forms: Vec<String> = children
        .iter()
        .map(|&child| subtree_canonical_string(tree, child))
        .collect();
    child_forms.sort_unstable();
    out.push('(');
    for (i, form) in child_forms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(form);
    }
    out.push(')');
}

/// Unordered isomorphism between two whole trees.
pub fn isomorphic(a: &Tree, b: &Tree) -> bool {
    if a.node_count() != b.node_count() {
        return false;
    }
    canonical_string(a) == canonical_string(b)
}

/// Unordered isomorphism between two subtrees (possibly of different trees).
pub fn subtrees_isomorphic(a: &Tree, a_node: NodeId, b: &Tree, b_node: NodeId) -> bool {
    if a.subtree_size(a_node) != b.subtree_size(b_node) {
        return false;
    }
    subtree_canonical_string(a, a_node) == subtree_canonical_string(b, b_node)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(labels: &[&str]) -> Tree {
        let mut t = Tree::new(labels[0]);
        let mut cur = t.root();
        for &l in &labels[1..] {
            cur = t.add_element(cur, l);
        }
        t
    }

    #[test]
    fn sibling_order_does_not_matter() {
        let mut t1 = Tree::new("a");
        let b = t1.add_element(t1.root(), "b");
        t1.add_text(b, "x");
        t1.add_element(t1.root(), "c");

        let mut t2 = Tree::new("a");
        t2.add_element(t2.root(), "c");
        let b2 = t2.add_element(t2.root(), "b");
        t2.add_text(b2, "x");

        assert!(isomorphic(&t1, &t2));
        assert_eq!(canonical_string(&t1), canonical_string(&t2));
    }

    #[test]
    fn label_differences_matter() {
        let t1 = chain(&["a", "b", "c"]);
        let t2 = chain(&["a", "b", "d"]);
        assert!(!isomorphic(&t1, &t2));
    }

    #[test]
    fn structure_differences_matter() {
        // a(b(c)) vs a(b, c)
        let t1 = chain(&["a", "b", "c"]);
        let mut t2 = Tree::new("a");
        t2.add_element(t2.root(), "b");
        t2.add_element(t2.root(), "c");
        assert!(!isomorphic(&t1, &t2));
    }

    #[test]
    fn text_vs_element_labels_are_distinguished() {
        let mut t1 = Tree::new("a");
        t1.add_element(t1.root(), "x");
        let mut t2 = Tree::new("a");
        t2.add_text(t2.root(), "x");
        assert!(!isomorphic(&t1, &t2));
    }

    #[test]
    fn multiset_of_children_matters() {
        // a(b, b, c) vs a(b, c, c)
        let mut t1 = Tree::new("a");
        t1.add_element(t1.root(), "b");
        t1.add_element(t1.root(), "b");
        t1.add_element(t1.root(), "c");
        let mut t2 = Tree::new("a");
        t2.add_element(t2.root(), "b");
        t2.add_element(t2.root(), "c");
        t2.add_element(t2.root(), "c");
        assert!(!isomorphic(&t1, &t2));
    }

    #[test]
    fn labels_with_structure_characters_do_not_collide() {
        let mut t1 = Tree::new("a");
        t1.add_element(t1.root(), "b(c");
        let mut t2 = Tree::new("a");
        let b = t2.add_element(t2.root(), "b");
        t2.add_element(b, "c");
        assert!(!isomorphic(&t1, &t2));
    }

    #[test]
    fn subtree_isomorphism() {
        let mut t = Tree::new("root");
        let l = t.add_element(t.root(), "list");
        let p1 = t.add_element(l, "p");
        t.add_text(p1, "v");
        let p2 = t.add_element(l, "p");
        t.add_text(p2, "v");
        let p3 = t.add_element(l, "p");
        t.add_text(p3, "w");
        assert!(subtrees_isomorphic(&t, p1, &t, p2));
        assert!(!subtrees_isomorphic(&t, p1, &t, p3));
    }

    #[test]
    fn canonical_form_hash_and_order() {
        let t1 = chain(&["a", "b"]);
        let t2 = chain(&["a", "b"]);
        let t3 = chain(&["a", "c"]);
        let c1 = CanonicalForm::of_tree(&t1);
        let c2 = CanonicalForm::of_tree(&t2);
        let c3 = CanonicalForm::of_tree(&t3);
        assert_eq!(c1, c2);
        assert_eq!(c1.hash_value(), c2.hash_value());
        assert_ne!(c1, c3);
        assert!(c1.as_str() < c3.as_str());
    }

    #[test]
    fn isomorphism_is_symmetric_and_reflexive() {
        let t1 = chain(&["a", "b", "c"]);
        let t2 = chain(&["a", "b", "c"]);
        assert!(isomorphic(&t1, &t1));
        assert!(isomorphic(&t1, &t2));
        assert!(isomorphic(&t2, &t1));
    }
}
