//! Node labels for data trees.

use std::fmt;

/// The label of a data-tree node.
///
/// Following the paper, a node is either an *element* node carrying a tag
/// name, or a *text* node carrying a string value. There is no separate
/// attribute kind: attributes of imported XML documents are turned into
/// element children (see [`crate::convert`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Label {
    /// An element node with a tag name such as `person` or `title`.
    Element(String),
    /// A text (value) node such as `"Alan Turing"`.
    Text(String),
}

impl Label {
    /// Creates an element label.
    pub fn element(name: impl Into<String>) -> Self {
        Label::Element(name.into())
    }

    /// Creates a text label.
    pub fn text(value: impl Into<String>) -> Self {
        Label::Text(value.into())
    }

    /// Returns `true` if this is an element label.
    pub fn is_element(&self) -> bool {
        matches!(self, Label::Element(_))
    }

    /// Returns `true` if this is a text label.
    pub fn is_text(&self) -> bool {
        matches!(self, Label::Text(_))
    }

    /// The element name, if this is an element label.
    pub fn element_name(&self) -> Option<&str> {
        match self {
            Label::Element(name) => Some(name),
            Label::Text(_) => None,
        }
    }

    /// The text value, if this is a text label.
    pub fn text_value(&self) -> Option<&str> {
        match self {
            Label::Text(value) => Some(value),
            Label::Element(_) => None,
        }
    }

    /// The underlying string, regardless of kind.
    pub fn as_str(&self) -> &str {
        match self {
            Label::Element(s) | Label::Text(s) => s,
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Element(name) => write!(f, "<{name}>"),
            Label::Text(value) => write!(f, "\"{value}\""),
        }
    }
}

impl From<&str> for Label {
    /// Convenience: a bare string is interpreted as an element name.
    fn from(name: &str) -> Self {
        Label::Element(name.to_string())
    }
}

impl From<String> for Label {
    fn from(name: String) -> Self {
        Label::Element(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_kind_predicates() {
        let e = Label::element("person");
        let t = Label::text("Alan");
        assert!(e.is_element());
        assert!(!e.is_text());
        assert!(t.is_text());
        assert!(!t.is_element());
    }

    #[test]
    fn accessors() {
        let e = Label::element("person");
        let t = Label::text("Alan");
        assert_eq!(e.element_name(), Some("person"));
        assert_eq!(e.text_value(), None);
        assert_eq!(t.text_value(), Some("Alan"));
        assert_eq!(t.element_name(), None);
        assert_eq!(e.as_str(), "person");
        assert_eq!(t.as_str(), "Alan");
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label::element("a").to_string(), "<a>");
        assert_eq!(Label::text("v").to_string(), "\"v\"");
    }

    #[test]
    fn from_str_is_element() {
        let l: Label = "book".into();
        assert_eq!(l, Label::Element("book".to_string()));
        let l2: Label = String::from("book").into();
        assert_eq!(l, l2);
    }

    #[test]
    fn ordering_is_total() {
        let mut labels = [
            Label::text("z"),
            Label::element("a"),
            Label::element("b"),
            Label::text("a"),
        ];
        labels.sort();
        // Elements sort before texts because of enum variant order.
        assert_eq!(labels[0], Label::element("a"));
        assert_eq!(labels[1], Label::element("b"));
        assert_eq!(labels[2], Label::text("a"));
        assert_eq!(labels[3], Label::text("z"));
    }
}
