//! Arena-allocated, unordered data trees.
//!
//! A [`Tree`] owns all its nodes in a single arena; nodes are addressed by
//! [`NodeId`] handles. Children are stored in insertion order for
//! deterministic traversal, but the *semantics* of the data model is
//! unordered: equality between trees and subtrees is unordered isomorphism
//! (see [`crate::iso`]).

use std::collections::HashMap;
use std::fmt;

use crate::chunk::ChunkedVec;
use crate::error::TreeError;
use crate::label::Label;

/// A handle to a node of a [`Tree`].
///
/// Node ids are only meaningful relative to the tree that created them; they
/// remain stable across insertions and deletions of *other* nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of this node inside its tree's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a node id from a raw arena index, the inverse of
    /// [`NodeId::index`]. Meant for positional side tables (storage keyed by
    /// `index()`); the id is only meaningful for the tree the index came from.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index as u32)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Slot {
    label: Label,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    alive: bool,
}

/// A finite, unordered, labelled data tree.
///
/// This is the data model of the paper: element and text nodes, no attribute
/// nodes, no mixed content (the latter is not enforced on every mutation but
/// can be checked with [`Tree::check_data_model`]).
///
/// The arena is stored in [`ChunkedVec`] chunks behind `Arc`s, so cloning a
/// tree is O(slots / chunk-size) pointer bumps and the clone shares every
/// chunk with the original. Mutations copy only the chunks they touch
/// (copy-on-write); [`Tree::chunk_copies`] exposes how many chunk copies a
/// sequence of mutations actually paid for.
#[derive(Debug, Clone)]
pub struct Tree {
    nodes: ChunkedVec<Slot>,
    root: NodeId,
    alive: usize,
}

impl Tree {
    /// Creates a tree with a single root node.
    ///
    /// A bare `&str` is interpreted as an element name.
    pub fn new(root_label: impl Into<Label>) -> Self {
        let mut nodes = ChunkedVec::new();
        nodes.push(Slot {
            label: root_label.into(),
            parent: None,
            children: Vec::new(),
            alive: true,
        });
        Tree {
            nodes,
            root: NodeId(0),
            alive: 1,
        }
    }

    /// The root node of the tree.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The number of live nodes.
    pub fn node_count(&self) -> usize {
        self.alive
    }

    /// The number of arena slots, including deleted ones.
    pub fn slot_count(&self) -> usize {
        self.nodes.len()
    }

    /// Cumulative count of arena chunks copied to un-share them before a
    /// write (see [`ChunkedVec::chunk_copies`]). The counter is carried
    /// across clones, so the delta between a snapshot clone and the mutated
    /// copy bounds the copy work of the mutation batch.
    pub fn chunk_copies(&self) -> u64 {
        self.nodes.chunk_copies()
    }

    /// Returns `true` if `id` refers to a live node of this tree.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .map(|slot| slot.alive)
            .unwrap_or(false)
    }

    fn slot(&self, id: NodeId) -> &Slot {
        let slot = self
            .nodes
            .get(id.index())
            .unwrap_or_else(|| panic!("node id {id} out of bounds"));
        assert!(slot.alive, "node id {id} refers to a deleted node");
        slot
    }

    fn slot_mut(&mut self, id: NodeId) -> &mut Slot {
        let slot = self
            .nodes
            .get_mut(id.index())
            .unwrap_or_else(|| panic!("node id {id} out of bounds"));
        assert!(slot.alive, "node id {id} refers to a deleted node");
        slot
    }

    /// The label of a node.
    ///
    /// # Panics
    /// Panics if `id` is not a live node of this tree.
    pub fn label(&self, id: NodeId) -> &Label {
        &self.slot(id).label
    }

    /// Replaces the label of a node.
    pub fn set_label(&mut self, id: NodeId, label: impl Into<Label>) {
        self.slot_mut(id).label = label.into();
    }

    /// The parent of a node, or `None` for the root.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.slot(id).parent
    }

    /// The children of a node, in insertion order.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.slot(id).children
    }

    /// Returns `true` if the node has no children.
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.slot(id).children.is_empty()
    }

    /// Returns `true` if the node is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        self.slot(id).label.is_element()
    }

    /// Returns `true` if the node is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        self.slot(id).label.is_text()
    }

    /// Adds a child with an arbitrary label and returns its id.
    ///
    /// # Panics
    /// Panics if `parent` is not a live node or is a text node.
    pub fn add_child(&mut self, parent: NodeId, label: impl Into<Label>) -> NodeId {
        self.try_add_child(parent, label)
            .expect("add_child: invalid parent")
    }

    /// Adds a child element node and returns its id.
    pub fn add_element(&mut self, parent: NodeId, name: impl Into<String>) -> NodeId {
        self.add_child(parent, Label::Element(name.into()))
    }

    /// Adds a child text node and returns its id.
    pub fn add_text(&mut self, parent: NodeId, value: impl Into<String>) -> NodeId {
        self.add_child(parent, Label::Text(value.into()))
    }

    /// Fallible variant of [`Tree::add_child`].
    pub fn try_add_child(
        &mut self,
        parent: NodeId,
        label: impl Into<Label>,
    ) -> Result<NodeId, TreeError> {
        if !self.contains(parent) {
            return Err(TreeError::InvalidNode(parent.0));
        }
        if self.slot(parent).label.is_text() {
            return Err(TreeError::TextNodeHasNoChildren(parent.0));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Slot {
            label: label.into(),
            parent: Some(parent),
            children: Vec::new(),
            alive: true,
        });
        self.slot_mut(parent).children.push(id);
        self.alive += 1;
        Ok(id)
    }

    /// Removes the subtree rooted at `id` (the node and all its descendants).
    ///
    /// The root of the tree cannot be removed.
    pub fn remove_subtree(&mut self, id: NodeId) -> Result<(), TreeError> {
        if !self.contains(id) {
            return Err(TreeError::InvalidNode(id.0));
        }
        if id == self.root {
            return Err(TreeError::CannotRemoveRoot);
        }
        // Unlink from the parent first.
        let parent = self.slot(id).parent.expect("non-root node has a parent");
        let siblings = &mut self.slot_mut(parent).children;
        siblings.retain(|&child| child != id);
        // Mark the whole subtree dead.
        let mut stack = vec![id];
        while let Some(node) = stack.pop() {
            let slot = self
                .nodes
                .get_mut(node.index())
                .expect("subtree child id in bounds");
            if !slot.alive {
                continue;
            }
            slot.alive = false;
            self.alive -= 1;
            stack.extend(slot.children.iter().copied());
            slot.children.clear();
            slot.parent = None;
        }
        Ok(())
    }

    /// Deep-copies the subtree of `other` rooted at `other_node` as a new
    /// child of `parent` in this tree; returns the id of the copied root.
    pub fn copy_subtree_from(
        &mut self,
        parent: NodeId,
        other: &Tree,
        other_node: NodeId,
    ) -> NodeId {
        let new_root = self.add_child(parent, other.label(other_node).clone());
        let mut stack: Vec<(NodeId, NodeId)> = vec![(other_node, new_root)];
        while let Some((src, dst)) = stack.pop() {
            for &child in other.children(src) {
                let copy = self.add_child(dst, other.label(child).clone());
                stack.push((child, copy));
            }
        }
        new_root
    }

    /// Extracts the subtree rooted at `id` as a new, independent tree.
    pub fn subtree_to_tree(&self, id: NodeId) -> Tree {
        let mut out = Tree::new(self.label(id).clone());
        let mut stack: Vec<(NodeId, NodeId)> = vec![(id, out.root())];
        while let Some((src, dst)) = stack.pop() {
            for &child in self.children(src) {
                let copy = out.add_child(dst, self.label(child).clone());
                stack.push((child, copy));
            }
        }
        out
    }

    /// Iterates over the node ids of the subtree rooted at `id`, in preorder.
    pub fn descendants_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(node) = stack.pop() {
            out.push(node);
            // Push children in reverse so that preorder follows insertion order.
            for &child in self.children(node).iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// Iterates over the proper descendants of `id`, in preorder.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut all = self.descendants_or_self(id);
        all.remove(0);
        all
    }

    /// All live nodes of the tree, in preorder from the root.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.descendants_or_self(self.root)
    }

    /// The chain of proper ancestors of `id`, from its parent up to the root.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = self.parent(id);
        while let Some(node) = cur {
            out.push(node);
            cur = self.parent(node);
        }
        out
    }

    /// The chain `id, parent(id), …, root`.
    pub fn ancestors_or_self(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        out.extend(self.ancestors(id));
        out
    }

    /// The depth of `id` (the root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).len()
    }

    /// The height of the tree (a single-node tree has height 0).
    pub fn height(&self) -> usize {
        self.nodes()
            .into_iter()
            .map(|n| self.depth(n))
            .max()
            .unwrap_or(0)
    }

    /// The number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.descendants_or_self(id).len()
    }

    /// Returns `true` if `ancestor` is a proper ancestor of `node`.
    pub fn is_strict_ancestor(&self, ancestor: NodeId, node: NodeId) -> bool {
        self.ancestors(node).contains(&ancestor)
    }

    /// Returns `true` if `ancestor` is `node` or one of its proper ancestors.
    pub fn is_ancestor_or_self(&self, ancestor: NodeId, node: NodeId) -> bool {
        ancestor == node || self.is_strict_ancestor(ancestor, node)
    }

    /// The lowest common ancestor of two nodes.
    pub fn lca(&self, a: NodeId, b: NodeId) -> NodeId {
        let path_a = self.ancestors_or_self(a);
        let path_b: std::collections::HashSet<NodeId> =
            self.ancestors_or_self(b).into_iter().collect();
        for node in path_a {
            if path_b.contains(&node) {
                return node;
            }
        }
        // Both paths end at the root, so this is unreachable for live nodes.
        self.root
    }

    /// The lowest common ancestor of a non-empty set of nodes.
    pub fn lca_of(&self, nodes: &[NodeId]) -> Option<NodeId> {
        let mut iter = nodes.iter().copied();
        let first = iter.next()?;
        Some(iter.fold(first, |acc, node| self.lca(acc, node)))
    }

    /// The *value* of a node, as used for value tests and joins:
    /// the string of a text node, or the string of an element node whose only
    /// child is a text node; `None` otherwise.
    pub fn node_value(&self, id: NodeId) -> Option<&str> {
        match self.label(id) {
            Label::Text(value) => Some(value),
            Label::Element(_) => {
                let children = self.children(id);
                if children.len() == 1 {
                    self.label(children[0]).text_value()
                } else {
                    None
                }
            }
        }
    }

    /// The concatenation of all text values in the subtree of `id`, sorted
    /// lexicographically so that the result is deterministic even though the
    /// tree is unordered.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut texts: Vec<&str> = self
            .descendants_or_self(id)
            .into_iter()
            .filter_map(|n| self.label(n).text_value())
            .collect();
        texts.sort_unstable();
        texts.concat()
    }

    /// All element nodes whose tag equals `name`.
    pub fn find_elements(&self, name: &str) -> Vec<NodeId> {
        self.nodes()
            .into_iter()
            .filter(|&n| self.label(n).element_name() == Some(name))
            .collect()
    }

    /// All element tag names occurring in the tree, deduplicated and sorted.
    pub fn element_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .nodes()
            .into_iter()
            .filter_map(|n| self.label(n).element_name().map(|s| s.to_string()))
            .collect();
        names.sort();
        names.dedup();
        names
    }

    /// Produces a compacted copy of this tree containing only live nodes,
    /// together with the mapping from old node ids to new ones.
    pub fn compact(&self) -> (Tree, HashMap<NodeId, NodeId>) {
        let mut out = Tree::new(self.label(self.root).clone());
        let mut mapping = HashMap::new();
        mapping.insert(self.root, out.root());
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let dst = mapping[&node];
            for &child in self.children(node) {
                let copy = out.add_child(dst, self.label(child).clone());
                mapping.insert(child, copy);
                stack.push(child);
            }
        }
        (out, mapping)
    }

    /// Checks the structural invariants of the arena (parent/child pointers
    /// are mutually consistent, exactly one root, no cycles).
    pub fn validate(&self) -> Result<(), TreeError> {
        let mut seen = 0usize;
        for (index, slot) in self.nodes.iter().enumerate() {
            if !slot.alive {
                continue;
            }
            seen += 1;
            let id = NodeId(index as u32);
            match slot.parent {
                None => {
                    if id != self.root {
                        return Err(TreeError::DataModelViolation(format!(
                            "node {id} has no parent but is not the root"
                        )));
                    }
                }
                Some(parent) => {
                    if !self.contains(parent) {
                        return Err(TreeError::InvalidNode(parent.0));
                    }
                    if !self.slot(parent).children.contains(&id) {
                        return Err(TreeError::DataModelViolation(format!(
                            "node {id} is not listed among the children of its parent {parent}"
                        )));
                    }
                }
            }
            for &child in &slot.children {
                if !self.contains(child) {
                    return Err(TreeError::InvalidNode(child.0));
                }
                if self.slot(child).parent != Some(id) {
                    return Err(TreeError::DataModelViolation(format!(
                        "child {child} of {id} does not point back to it"
                    )));
                }
            }
        }
        if seen != self.alive {
            return Err(TreeError::DataModelViolation(format!(
                "live-node count mismatch: counted {seen}, recorded {}",
                self.alive
            )));
        }
        // Reachability: every live node must be reachable from the root.
        if self.nodes().len() != self.alive {
            return Err(TreeError::DataModelViolation(
                "some live nodes are unreachable from the root".to_string(),
            ));
        }
        Ok(())
    }

    /// Checks the paper's data-model restrictions: text nodes are leaves, and
    /// there is no mixed content (an element has either element children or a
    /// single text child).
    pub fn check_data_model(&self) -> Result<(), TreeError> {
        for node in self.nodes() {
            match self.label(node) {
                Label::Text(_) => {
                    if !self.is_leaf(node) {
                        return Err(TreeError::TextNodeHasNoChildren(node.0));
                    }
                }
                Label::Element(name) => {
                    let children = self.children(node);
                    let text_children = children.iter().filter(|&&c| self.is_text(c)).count();
                    if text_children > 0 && children.len() != text_children {
                        return Err(TreeError::DataModelViolation(format!(
                            "element <{name}> ({node}) has mixed content"
                        )));
                    }
                    if text_children > 1 {
                        return Err(TreeError::DataModelViolation(format!(
                            "element <{name}> ({node}) has more than one text child"
                        )));
                    }
                }
            }
        }
        Ok(())
    }

    /// Unordered-isomorphism test; see [`crate::iso`].
    pub fn isomorphic(&self, other: &Tree) -> bool {
        crate::iso::isomorphic(self, other)
    }
}

impl PartialEq for Tree {
    /// Tree equality is **unordered isomorphism**, matching the paper's
    /// unordered data model.
    fn eq(&self, other: &Self) -> bool {
        self.isomorphic(other)
    }
}

impl Eq for Tree {}

impl fmt::Display for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn render(tree: &Tree, node: NodeId, out: &mut fmt::Formatter<'_>) -> fmt::Result {
            match tree.label(node) {
                Label::Text(value) => write!(out, "{value:?}"),
                Label::Element(name) => {
                    write!(out, "{name}")?;
                    let children = tree.children(node);
                    if !children.is_empty() {
                        write!(out, "(")?;
                        for (i, &child) in children.iter().enumerate() {
                            if i > 0 {
                                write!(out, ", ")?;
                            }
                            render(tree, child, out)?;
                        }
                        write!(out, ")")?;
                    }
                    Ok(())
                }
            }
        }
        render(self, self.root, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // a(b("foo"), b("foo"), e(c("nee")), d(f("bar")))  — the slide-5 shape.
        let mut t = Tree::new("A");
        let b1 = t.add_element(t.root(), "B");
        t.add_text(b1, "foo");
        let b2 = t.add_element(t.root(), "B");
        t.add_text(b2, "foo");
        let e = t.add_element(t.root(), "E");
        let c = t.add_element(e, "C");
        t.add_text(c, "nee");
        let d = t.add_element(t.root(), "D");
        let f = t.add_element(d, "F");
        t.add_text(f, "bar");
        t
    }

    #[test]
    fn build_and_count() {
        let t = sample();
        assert_eq!(t.node_count(), 11);
        assert_eq!(t.children(t.root()).len(), 4);
        assert!(t.validate().is_ok());
        assert!(t.check_data_model().is_ok());
    }

    #[test]
    fn labels_and_kinds() {
        let mut t = Tree::new("root");
        let x = t.add_element(t.root(), "x");
        let v = t.add_text(x, "42");
        assert!(t.is_element(x));
        assert!(t.is_text(v));
        assert!(t.is_leaf(v));
        assert!(!t.is_leaf(x));
        assert_eq!(t.label(x).element_name(), Some("x"));
        t.set_label(x, "y");
        assert_eq!(t.label(x).element_name(), Some("y"));
    }

    #[test]
    fn parent_children_navigation() {
        let t = sample();
        let root = t.root();
        assert_eq!(t.parent(root), None);
        for &child in t.children(root) {
            assert_eq!(t.parent(child), Some(root));
        }
    }

    #[test]
    fn text_node_refuses_children() {
        let mut t = Tree::new("a");
        let txt = t.add_text(t.root(), "v");
        let err = t.try_add_child(txt, "b").unwrap_err();
        assert_eq!(err, TreeError::TextNodeHasNoChildren(txt.0));
    }

    #[test]
    fn invalid_parent_is_reported() {
        let mut t = Tree::new("a");
        let bogus = NodeId(999);
        assert_eq!(
            t.try_add_child(bogus, "b").unwrap_err(),
            TreeError::InvalidNode(999)
        );
    }

    #[test]
    fn remove_subtree_removes_descendants() {
        let mut t = sample();
        let e = t.find_elements("E")[0];
        let before = t.node_count();
        t.remove_subtree(e).unwrap();
        assert_eq!(t.node_count(), before - 3); // E, C, "nee"
        assert!(!t.contains(e));
        assert!(t.find_elements("C").is_empty());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn removing_root_fails() {
        let mut t = sample();
        assert_eq!(
            t.remove_subtree(t.root()).unwrap_err(),
            TreeError::CannotRemoveRoot
        );
    }

    #[test]
    fn removing_dead_node_fails() {
        let mut t = sample();
        let e = t.find_elements("E")[0];
        t.remove_subtree(e).unwrap();
        assert!(matches!(
            t.remove_subtree(e),
            Err(TreeError::InvalidNode(_))
        ));
    }

    #[test]
    fn descendants_and_preorder() {
        let t = sample();
        let all = t.nodes();
        assert_eq!(all.len(), 11);
        assert_eq!(all[0], t.root());
        let e = t.find_elements("E")[0];
        assert_eq!(t.descendants_or_self(e).len(), 3);
        assert_eq!(t.descendants(e).len(), 2);
    }

    #[test]
    fn ancestors_and_depth() {
        let t = sample();
        let nee = t
            .nodes()
            .into_iter()
            .find(|&n| t.label(n).text_value() == Some("nee"))
            .unwrap();
        assert_eq!(t.depth(nee), 3);
        assert_eq!(t.ancestors(nee).len(), 3);
        assert_eq!(t.ancestors_or_self(nee).len(), 4);
        assert_eq!(*t.ancestors(nee).last().unwrap(), t.root());
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn ancestor_predicates_and_lca() {
        let t = sample();
        let e = t.find_elements("E")[0];
        let c = t.find_elements("C")[0];
        let d = t.find_elements("D")[0];
        assert!(t.is_strict_ancestor(e, c));
        assert!(!t.is_strict_ancestor(c, e));
        assert!(t.is_ancestor_or_self(c, c));
        assert_eq!(t.lca(c, d), t.root());
        assert_eq!(t.lca(c, e), e);
        assert_eq!(t.lca_of(&[c, d, e]), Some(t.root()));
        assert_eq!(t.lca_of(&[]), None);
    }

    #[test]
    fn node_value_and_text_content() {
        let t = sample();
        let b = t.find_elements("B")[0];
        assert_eq!(t.node_value(b), Some("foo"));
        let e = t.find_elements("E")[0];
        assert_eq!(t.node_value(e), None); // its only child is an element
        let root_value: String = t.text_content(t.root());
        assert_eq!(root_value, "barfoofoonee"); // sorted text values concatenated
        let txt = t.children(b)[0];
        assert_eq!(t.node_value(txt), Some("foo"));
    }

    #[test]
    fn copy_subtree_between_trees() {
        let src = sample();
        let mut dst = Tree::new("root");
        let e = src.find_elements("E")[0];
        let copied = dst.copy_subtree_from(dst.root(), &src, e);
        assert_eq!(dst.subtree_size(copied), 3);
        assert_eq!(dst.label(copied).element_name(), Some("E"));
        assert!(dst.validate().is_ok());
        // The copy is deep: mutating the destination does not affect the source.
        dst.remove_subtree(copied).unwrap();
        assert_eq!(src.find_elements("E").len(), 1);
    }

    #[test]
    fn subtree_to_tree_extracts_deep_copy() {
        let t = sample();
        let d = t.find_elements("D")[0];
        let sub = t.subtree_to_tree(d);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.label(sub.root()).element_name(), Some("D"));
        assert!(sub.validate().is_ok());
    }

    #[test]
    fn clone_is_copy_on_write() {
        // Build a tree spanning several chunks, clone it, mutate the clone.
        let mut t = Tree::new("root");
        let mut leaves = Vec::new();
        for i in 0..10 {
            let branch = t.add_element(t.root(), format!("branch{i}"));
            for j in 0..30 {
                leaves.push(t.add_element(branch, format!("leaf{j}")));
            }
        }
        let chunks = t.slot_count().div_ceil(64) as u64;
        let snapshot = t.clone();
        let before = t.chunk_copies();
        // A single-label edit touches exactly one chunk.
        t.set_label(leaves[7], "renamed");
        let copied = t.chunk_copies() - before;
        assert_eq!(copied, 1, "one chunk copy for one touched node");
        assert!(copied < chunks, "far fewer copies than total chunks");
        // The snapshot still sees the old label, untouched.
        assert_eq!(snapshot.label(leaves[7]).element_name(), Some("leaf7"));
        assert_eq!(t.label(leaves[7]).element_name(), Some("renamed"));
        assert_eq!(snapshot.node_count(), t.node_count());
        assert!(snapshot.validate().is_ok());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn small_mutation_batch_copies_few_chunks() {
        let mut t = Tree::new("root");
        for i in 0..8 {
            let branch = t.add_element(t.root(), format!("branch{i}"));
            for j in 0..40 {
                t.add_element(branch, format!("leaf{j}"));
            }
        }
        let _pin = t.clone();
        let before = t.chunk_copies();
        // One insert: copies the tail chunk plus the parent's chunk at most.
        let parent = t.find_elements("branch3")[0];
        t.add_element(parent, "new-leaf");
        let copied = t.chunk_copies() - before;
        assert!(
            copied <= 2,
            "insert after a snapshot copied {copied} chunks, expected <= 2"
        );
    }

    #[test]
    fn compact_preserves_shape() {
        let mut t = sample();
        let e = t.find_elements("E")[0];
        t.remove_subtree(e).unwrap();
        let (compacted, mapping) = t.compact();
        assert_eq!(compacted.node_count(), t.node_count());
        assert_eq!(compacted.slot_count(), t.node_count());
        assert!(compacted.isomorphic(&t));
        assert_eq!(mapping.len(), t.node_count());
    }

    #[test]
    fn equality_is_unordered() {
        let mut t1 = Tree::new("a");
        t1.add_element(t1.root(), "b");
        t1.add_element(t1.root(), "c");
        let mut t2 = Tree::new("a");
        t2.add_element(t2.root(), "c");
        t2.add_element(t2.root(), "b");
        assert_eq!(t1, t2);
        let mut t3 = Tree::new("a");
        t3.add_element(t3.root(), "b");
        assert_ne!(t1, t3);
    }

    #[test]
    fn display_renders_nested_structure() {
        let mut t = Tree::new("a");
        let b = t.add_element(t.root(), "b");
        t.add_text(b, "v");
        let rendered = t.to_string();
        assert!(rendered.contains('a'));
        assert!(rendered.contains("b(\"v\")"));
    }

    #[test]
    fn mixed_content_is_detected() {
        let mut t = Tree::new("a");
        t.add_text(t.root(), "v");
        t.add_element(t.root(), "b");
        assert!(matches!(
            t.check_data_model(),
            Err(TreeError::DataModelViolation(_))
        ));
    }

    #[test]
    fn two_text_children_are_detected() {
        let mut t = Tree::new("a");
        t.add_text(t.root(), "v");
        t.add_text(t.root(), "w");
        assert!(t.check_data_model().is_err());
    }

    #[test]
    fn element_names_are_sorted_and_unique() {
        let t = sample();
        assert_eq!(t.element_names(), vec!["A", "B", "C", "D", "E", "F"]);
    }
}
