//! Node paths and minimal connecting subtrees.
//!
//! Two utilities used by the query answer construction:
//!
//! * [`NodePath`] — a stable, position-independent address of a node given as
//!   the sequence of element labels from the root (plus a disambiguating
//!   occurrence index at each step), useful for persisting references to
//!   nodes of an unordered tree;
//! * [`steiner_nodes`] / [`steiner_tree`] — the *minimal subtree* of a data
//!   tree containing a given set of nodes, which is exactly how the paper
//!   defines the answer to a tree-pattern query (slide 6).

use std::collections::{HashMap, HashSet};

use crate::tree::{NodeId, Tree};

/// A label path from the root to a node: at each step the child label and the
/// occurrence index among same-labelled siblings (in canonical-string order,
/// so the address does not depend on insertion order).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct NodePath {
    steps: Vec<(String, usize)>,
}

impl NodePath {
    /// Computes the path of `node` within `tree`.
    pub fn of(tree: &Tree, node: NodeId) -> Self {
        let mut chain = tree.ancestors_or_self(node);
        chain.reverse(); // root … node
        let mut steps = Vec::new();
        for window in chain.windows(2) {
            let (parent, child) = (window[0], window[1]);
            let label = tree.label(child);
            // Occurrence index among siblings with the same label, ordered by
            // canonical form for determinism in an unordered tree.
            let mut same: Vec<NodeId> = tree
                .children(parent)
                .iter()
                .copied()
                .filter(|&c| tree.label(c) == label)
                .collect();
            same.sort_by_key(|&c| crate::iso::subtree_canonical_string(tree, c));
            let index = same.iter().position(|&c| c == child).unwrap_or(0);
            steps.push((label.as_str().to_string(), index));
        }
        NodePath { steps }
    }

    /// Resolves this path against a tree, if a matching node exists.
    ///
    /// Resolution follows the same canonical ordering used by [`NodePath::of`],
    /// so `resolve(of(t, n), t) == Some(n)` as long as the tree is unchanged.
    pub fn resolve(&self, tree: &Tree) -> Option<NodeId> {
        let mut current = tree.root();
        for (label, index) in &self.steps {
            let mut same: Vec<NodeId> = tree
                .children(current)
                .iter()
                .copied()
                .filter(|&c| tree.label(c).as_str() == label)
                .collect();
            if same.is_empty() {
                return None;
            }
            same.sort_by_key(|&c| crate::iso::subtree_canonical_string(tree, c));
            current = *same.get(*index)?;
        }
        Some(current)
    }

    /// The number of steps (the depth of the addressed node).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` if the path addresses the root.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The node set of the minimal subtree of `tree` containing every node in
/// `nodes`: the union, over all selected nodes, of the path from the lowest
/// common ancestor of the whole set down to that node.
///
/// Returns an empty vector when `nodes` is empty.
pub fn steiner_nodes(tree: &Tree, nodes: &[NodeId]) -> Vec<NodeId> {
    let Some(lca) = tree.lca_of(nodes) else {
        return Vec::new();
    };
    let mut keep: HashSet<NodeId> = HashSet::new();
    for &node in nodes {
        let mut cur = node;
        loop {
            keep.insert(cur);
            if cur == lca {
                break;
            }
            cur = tree
                .parent(cur)
                .expect("selected node must be a descendant of the LCA");
        }
    }
    // Return in preorder for determinism.
    tree.descendants_or_self(lca)
        .into_iter()
        .filter(|n| keep.contains(n))
        .collect()
}

/// Builds the minimal subtree of `tree` containing every node in `nodes` as a
/// fresh [`Tree`], together with the mapping from original node ids to nodes
/// of the answer tree.
///
/// Returns `None` when `nodes` is empty.
pub fn steiner_tree(tree: &Tree, nodes: &[NodeId]) -> Option<(Tree, HashMap<NodeId, NodeId>)> {
    let keep = steiner_nodes(tree, nodes);
    if keep.is_empty() {
        return None;
    }
    let keep_set: HashSet<NodeId> = keep.iter().copied().collect();
    let root = keep[0];
    let mut out = Tree::new(tree.label(root).clone());
    let mut mapping = HashMap::new();
    mapping.insert(root, out.root());
    // keep is in preorder, so every non-root node's parent was mapped already.
    for &node in &keep[1..] {
        let parent = tree
            .parent(node)
            .expect("non-root steiner node has a parent");
        debug_assert!(keep_set.contains(&parent));
        let mapped_parent = mapping[&parent];
        let copy = out.add_child(mapped_parent, tree.label(node).clone());
        mapping.insert(node, copy);
    }
    Some((out, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // A(B("foo"), B("bar"), E(C("nee")), D(F))
        let mut t = Tree::new("A");
        let b1 = t.add_element(t.root(), "B");
        t.add_text(b1, "foo");
        let b2 = t.add_element(t.root(), "B");
        t.add_text(b2, "bar");
        let e = t.add_element(t.root(), "E");
        let c = t.add_element(e, "C");
        t.add_text(c, "nee");
        let d = t.add_element(t.root(), "D");
        t.add_element(d, "F");
        t
    }

    #[test]
    fn node_path_round_trips() {
        let t = sample();
        for node in t.nodes() {
            let path = NodePath::of(&t, node);
            assert_eq!(path.resolve(&t), Some(node), "path {path:?}");
            assert_eq!(path.len(), t.depth(node));
        }
    }

    #[test]
    fn node_path_distinguishes_same_labelled_siblings() {
        let t = sample();
        let bs = t.find_elements("B");
        let p0 = NodePath::of(&t, bs[0]);
        let p1 = NodePath::of(&t, bs[1]);
        assert_ne!(p0, p1);
        assert_eq!(p0.resolve(&t), Some(bs[0]));
        assert_eq!(p1.resolve(&t), Some(bs[1]));
    }

    #[test]
    fn node_path_missing_node_resolves_to_none() {
        let t = sample();
        let c = t.find_elements("C")[0];
        let path = NodePath::of(&t, c);
        let mut pruned = t.clone();
        let e = pruned.find_elements("E")[0];
        pruned.remove_subtree(e).unwrap();
        assert_eq!(path.resolve(&pruned), None);
        assert!(NodePath::default().is_empty());
    }

    #[test]
    fn steiner_of_single_node_is_path_to_itself() {
        let t = sample();
        let c = t.find_elements("C")[0];
        let nodes = steiner_nodes(&t, &[c]);
        assert_eq!(nodes, vec![c]);
    }

    #[test]
    fn steiner_connects_through_lca() {
        let t = sample();
        let c = t.find_elements("C")[0];
        let f = t.find_elements("F")[0];
        let nodes = steiner_nodes(&t, &[c, f]);
        // LCA is the root A: keep A, E, C, D, F.
        assert_eq!(nodes.len(), 5);
        assert!(nodes.contains(&t.root()));
        assert!(nodes.contains(&t.find_elements("E")[0]));
        assert!(nodes.contains(&t.find_elements("D")[0]));
    }

    #[test]
    fn steiner_tree_builds_minimal_answer() {
        let t = sample();
        let c = t.find_elements("C")[0];
        let f = t.find_elements("F")[0];
        let (answer, mapping) = steiner_tree(&t, &[c, f]).unwrap();
        assert_eq!(answer.node_count(), 5);
        assert_eq!(answer.label(answer.root()).element_name(), Some("A"));
        assert_eq!(answer.label(mapping[&c]).element_name(), Some("C"));
        assert!(answer.validate().is_ok());
        // The "foo"/"bar" B nodes are not part of the minimal subtree.
        assert!(answer.find_elements("B").is_empty());
    }

    #[test]
    fn steiner_below_root_keeps_subtree_rooted_at_lca() {
        let t = sample();
        let c = t.find_elements("C")[0];
        let nee = t.children(c)[0];
        let (answer, _) = steiner_tree(&t, &[c, nee]).unwrap();
        // LCA of C and "nee" is C itself.
        assert_eq!(answer.label(answer.root()).element_name(), Some("C"));
        assert_eq!(answer.node_count(), 2);
    }

    #[test]
    fn steiner_of_empty_set_is_none() {
        let t = sample();
        assert!(steiner_tree(&t, &[]).is_none());
        assert!(steiner_nodes(&t, &[]).is_empty());
    }
}
