//! A small, self-contained XML document object model.
//!
//! The paper stores probabilistic documents as plain XML files on the file
//! system; this module provides the XML substrate: a simple DOM
//! ([`XmlDocument`], [`XmlElement`], [`XmlNode`]), a hand-written parser
//! ([`parse`]) and a serializer ([`XmlDocument::to_xml_string`] /
//! [`XmlElement::write_xml`]).
//!
//! Supported syntax: prolog (`<?xml …?>`), elements with attributes,
//! self-closing tags, text content, comments, CDATA sections and the five
//! predefined entities plus numeric character references. DTDs and processing
//! instructions other than the prolog are not supported — they are not needed
//! for the PrXML storage format.

mod parser;
mod writer;

pub use parser::parse;
pub use writer::{escape_attribute, escape_text};

use std::fmt;

/// A parsed XML document: the prolog is discarded, only the root element is
/// kept (plus nothing else, as trailing comments are ignored).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlDocument {
    /// The document (root) element.
    pub root: XmlElement,
}

impl XmlDocument {
    /// Wraps a root element into a document.
    pub fn new(root: XmlElement) -> Self {
        XmlDocument { root }
    }

    /// Parses a document from its textual form.
    pub fn parse(input: &str) -> Result<Self, crate::error::XmlError> {
        parse(input)
    }

    /// Serializes the document, with an XML prolog, using two-space
    /// indentation when `pretty` is true.
    pub fn to_xml_string(&self, pretty: bool) -> String {
        let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
        self.root.write_xml(&mut out, pretty, 0);
        if pretty && !out.ends_with('\n') {
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for XmlDocument {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string(true))
    }
}

/// An XML element: a name, attributes (in document order) and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct XmlElement {
    /// Tag name (possibly with a namespace prefix, kept verbatim).
    pub name: String,
    /// Attributes in document order.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

impl XmlElement {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        XmlElement {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attribute(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: XmlElement) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Looks up an attribute value by name.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(attr, _)| attr == name)
            .map(|(_, value)| value.as_str())
    }

    /// Sets (or replaces) an attribute.
    pub fn set_attribute(&mut self, name: impl Into<String>, value: impl Into<String>) {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attributes.iter_mut().find(|(attr, _)| *attr == name) {
            slot.1 = value;
        } else {
            self.attributes.push((name, value));
        }
    }

    /// Iterates over child elements (skipping text and comments).
    pub fn child_elements(&self) -> impl Iterator<Item = &XmlElement> {
        self.children.iter().filter_map(|child| match child {
            XmlNode::Element(el) => Some(el),
            _ => None,
        })
    }

    /// The first child element with the given name.
    pub fn child_element(&self, name: &str) -> Option<&XmlElement> {
        self.child_elements().find(|el| el.name == name)
    }

    /// The concatenation of direct text children (whitespace preserved).
    pub fn text(&self) -> String {
        self.children
            .iter()
            .filter_map(|child| match child {
                XmlNode::Text(text) => Some(text.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Serializes this element into `out`.
    pub fn write_xml(&self, out: &mut String, pretty: bool, indent: usize) {
        writer::write_element(self, out, pretty, indent);
    }
}

/// A child node of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(XmlElement),
    /// Character data (entities already decoded).
    Text(String),
    /// A comment (kept so that round-tripping preserves it).
    Comment(String),
}

impl XmlNode {
    /// Returns the element if this node is one.
    pub fn as_element(&self) -> Option<&XmlElement> {
        match self {
            XmlNode::Element(el) => Some(el),
            _ => None,
        }
    }

    /// Returns the text if this node is character data.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            XmlNode::Text(text) => Some(text),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_api() {
        let el = XmlElement::new("person")
            .with_attribute("id", "42")
            .with_child(XmlElement::new("name").with_text("Alan"))
            .with_text("  ");
        assert_eq!(el.attribute("id"), Some("42"));
        assert_eq!(el.attribute("missing"), None);
        assert_eq!(el.child_elements().count(), 1);
        assert_eq!(el.child_element("name").unwrap().text(), "Alan");
        assert!(el.child_element("age").is_none());
    }

    #[test]
    fn set_attribute_replaces_existing() {
        let mut el = XmlElement::new("a").with_attribute("k", "1");
        el.set_attribute("k", "2");
        el.set_attribute("other", "3");
        assert_eq!(el.attribute("k"), Some("2"));
        assert_eq!(el.attributes.len(), 2);
    }

    #[test]
    fn node_accessors() {
        let el = XmlNode::Element(XmlElement::new("x"));
        let text = XmlNode::Text("hello".into());
        let comment = XmlNode::Comment("c".into());
        assert!(el.as_element().is_some());
        assert!(el.as_text().is_none());
        assert_eq!(text.as_text(), Some("hello"));
        assert!(comment.as_element().is_none());
        assert!(comment.as_text().is_none());
    }

    #[test]
    fn document_round_trip() {
        let doc = XmlDocument::new(
            XmlElement::new("library")
                .with_child(XmlElement::new("book").with_attribute("year", "1936")),
        );
        let xml = doc.to_xml_string(true);
        let reparsed = XmlDocument::parse(&xml).unwrap();
        assert_eq!(doc, reparsed);
        assert!(xml.starts_with("<?xml"));
        assert_eq!(doc.to_string(), xml);
    }
}
