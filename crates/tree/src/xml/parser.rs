//! A hand-written, dependency-free XML parser.
//!
//! The parser covers the subset of XML needed by the PrXML storage format and
//! the examples shipped with this repository: prolog, nested elements with
//! attributes, self-closing tags, text, comments, CDATA sections, the five
//! predefined entities and numeric character references. It reports errors
//! with 1-based line/column positions.

use crate::error::XmlError;

use super::{XmlDocument, XmlElement, XmlNode};

/// Parses an XML document from text.
pub fn parse(input: &str) -> Result<XmlDocument, XmlError> {
    let mut parser = Parser::new(input);
    parser.skip_misc()?;
    let root = parser.parse_element()?;
    parser.skip_misc()?;
    if !parser.at_end() {
        return Err(parser.error("unexpected content after the root element"));
    }
    Ok(XmlDocument { root })
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn error(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(message, self.line, self.column)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let byte = self.peek()?;
        self.pos += 1;
        if byte == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(byte)
    }

    fn starts_with(&self, prefix: &str) -> bool {
        self.input[self.pos..].starts_with(prefix.as_bytes())
    }

    fn expect_str(&mut self, expected: &str) -> Result<(), XmlError> {
        if self.starts_with(expected) {
            for _ in 0..expected.len() {
                self.bump();
            }
            Ok(())
        } else {
            Err(self.error(format!("expected `{expected}`")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Skips whitespace, the prolog, comments and (ignored) processing
    /// instructions outside the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_whitespace();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                // Skip a simple (bracket-free) DOCTYPE declaration.
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, terminator: &str) -> Result<(), XmlError> {
        while !self.at_end() {
            if self.starts_with(terminator) {
                for _ in 0..terminator.len() {
                    self.bump();
                }
                return Ok(());
            }
            self.bump();
        }
        Err(self.error(format!("unterminated construct, expected `{terminator}`")))
    }

    fn is_name_start(byte: u8) -> bool {
        byte.is_ascii_alphabetic() || byte == b'_' || byte == b':' || byte >= 0x80
    }

    fn is_name_char(byte: u8) -> bool {
        Self::is_name_start(byte) || byte.is_ascii_digit() || byte == b'-' || byte == b'.'
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(byte) if Self::is_name_start(byte) => {
                self.bump();
            }
            _ => return Err(self.error("expected a name")),
        }
        while matches!(self.peek(), Some(byte) if Self::is_name_char(byte)) {
            self.bump();
        }
        let raw = &self.input[start..self.pos];
        String::from_utf8(raw.to_vec()).map_err(|_| self.error("name is not valid UTF-8"))
    }

    fn parse_element(&mut self) -> Result<XmlElement, XmlError> {
        self.expect_str("<")?;
        let name = self.parse_name()?;
        let mut element = XmlElement::new(name);

        // Attributes.
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some(b'/') => {
                    self.bump();
                    self.expect_str(">")?;
                    return Ok(element);
                }
                Some(b'>') => {
                    self.bump();
                    break;
                }
                Some(byte) if Self::is_name_start(byte) => {
                    let attr_name = self.parse_name()?;
                    self.skip_whitespace();
                    self.expect_str("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    element.attributes.push((attr_name, value));
                }
                _ => return Err(self.error("expected an attribute, `>` or `/>`")),
            }
        }

        // Content.
        loop {
            if self.at_end() {
                return Err(self.error(format!("unclosed element <{}>", element.name)));
            }
            if self.starts_with("</") {
                self.expect_str("</")?;
                let closing = self.parse_name()?;
                if closing != element.name {
                    return Err(self.error(format!(
                        "mismatched closing tag: expected </{}>, found </{closing}>",
                        element.name
                    )));
                }
                self.skip_whitespace();
                self.expect_str(">")?;
                return Ok(element);
            } else if self.starts_with("<!--") {
                let comment = self.parse_comment()?;
                element.children.push(XmlNode::Comment(comment));
            } else if self.starts_with("<![CDATA[") {
                let text = self.parse_cdata()?;
                if !text.is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            } else if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.peek() == Some(b'<') {
                let child = self.parse_element()?;
                element.children.push(XmlNode::Element(child));
            } else {
                let text = self.parse_text()?;
                // Whitespace-only runs between elements are formatting noise.
                if !text.trim().is_empty() {
                    element.children.push(XmlNode::Text(text));
                }
            }
        }
    }

    fn parse_attribute_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.error("expected a quoted attribute value")),
        };
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated attribute value")),
                Some(byte) if byte == quote => {
                    self.bump();
                    return Ok(value);
                }
                Some(b'&') => value.push_str(&self.parse_entity()?),
                Some(b'<') => return Err(self.error("`<` is not allowed in attribute values")),
                Some(_) => {
                    let start = self.pos;
                    while let Some(byte) = self.peek() {
                        if byte == quote || byte == b'&' || byte == b'<' {
                            break;
                        }
                        self.bump();
                    }
                    value.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.error("attribute value is not valid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_text(&mut self) -> Result<String, XmlError> {
        let mut text = String::new();
        loop {
            match self.peek() {
                None | Some(b'<') => return Ok(text),
                Some(b'&') => text.push_str(&self.parse_entity()?),
                Some(_) => {
                    let start = self.pos;
                    while let Some(byte) = self.peek() {
                        if byte == b'<' || byte == b'&' {
                            break;
                        }
                        self.bump();
                    }
                    text.push_str(
                        std::str::from_utf8(&self.input[start..self.pos])
                            .map_err(|_| self.error("text is not valid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn parse_comment(&mut self) -> Result<String, XmlError> {
        self.expect_str("<!--")?;
        let start = self.pos;
        while !self.at_end() && !self.starts_with("-->") {
            self.bump();
        }
        if self.at_end() {
            return Err(self.error("unterminated comment"));
        }
        let comment = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("comment is not valid UTF-8"))?
            .to_string();
        self.expect_str("-->")?;
        Ok(comment)
    }

    fn parse_cdata(&mut self) -> Result<String, XmlError> {
        self.expect_str("<![CDATA[")?;
        let start = self.pos;
        while !self.at_end() && !self.starts_with("]]>") {
            self.bump();
        }
        if self.at_end() {
            return Err(self.error("unterminated CDATA section"));
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("CDATA is not valid UTF-8"))?
            .to_string();
        self.expect_str("]]>")?;
        Ok(text)
    }

    fn parse_entity(&mut self) -> Result<String, XmlError> {
        self.expect_str("&")?;
        let start = self.pos;
        while matches!(self.peek(), Some(byte) if byte != b';') {
            self.bump();
            if self.pos - start > 12 {
                return Err(self.error("entity reference too long"));
            }
        }
        if self.peek() != Some(b';') {
            return Err(self.error("unterminated entity reference"));
        }
        let name = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.error("entity is not valid UTF-8"))?
            .to_string();
        self.bump(); // consume ';'
        let decoded = match name.as_str() {
            "lt" => "<".to_string(),
            "gt" => ">".to_string(),
            "amp" => "&".to_string(),
            "apos" => "'".to_string(),
            "quot" => "\"".to_string(),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16)
                    .map_err(|_| self.error(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.error(format!("invalid code point in &{name};")))?
                    .to_string()
            }
            _ if name.starts_with('#') => {
                let code = name[1..]
                    .parse::<u32>()
                    .map_err(|_| self.error(format!("invalid character reference &{name};")))?;
                char::from_u32(code)
                    .ok_or_else(|| self.error(format!("invalid code point in &{name};")))?
                    .to_string()
            }
            _ => return Err(self.error(format!("unknown entity &{name};"))),
        };
        Ok(decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_document() {
        let doc = parse("<a><b>foo</b><c/></a>").unwrap();
        assert_eq!(doc.root.name, "a");
        assert_eq!(doc.root.children.len(), 2);
        assert_eq!(doc.root.child_element("b").unwrap().text(), "foo");
        assert!(doc.root.child_element("c").unwrap().children.is_empty());
    }

    #[test]
    fn parses_prolog_and_doctype() {
        let doc = parse("<?xml version=\"1.0\"?>\n<!DOCTYPE a>\n<!-- hi -->\n<a/>").unwrap();
        assert_eq!(doc.root.name, "a");
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let doc = parse(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        assert_eq!(doc.root.attribute("x"), Some("1"));
        assert_eq!(doc.root.attribute("y"), Some("two & three"));
    }

    #[test]
    fn parses_entities_and_char_refs() {
        let doc = parse("<a>&lt;b&gt; &amp; &quot;q&quot; &apos;s&apos; &#65;&#x42;</a>").unwrap();
        assert_eq!(doc.root.text(), "<b> & \"q\" 's' AB");
    }

    #[test]
    fn parses_cdata() {
        let doc = parse("<a><![CDATA[<not-a-tag> & stuff]]></a>").unwrap();
        assert_eq!(doc.root.text(), "<not-a-tag> & stuff");
    }

    #[test]
    fn parses_comments_inside_elements() {
        let doc = parse("<a><!-- note --><b/></a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
        assert!(matches!(doc.root.children[0], XmlNode::Comment(ref c) if c.trim() == "note"));
    }

    #[test]
    fn whitespace_between_elements_is_dropped() {
        let doc = parse("<a>\n  <b>x</b>\n  <c>y</c>\n</a>").unwrap();
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn nested_elements() {
        let doc = parse("<a><b><c><d>deep</d></c></b></a>").unwrap();
        let d = doc
            .root
            .child_element("b")
            .and_then(|b| b.child_element("c"))
            .and_then(|c| c.child_element("d"))
            .unwrap();
        assert_eq!(d.text(), "deep");
    }

    #[test]
    fn namespaced_names_are_kept_verbatim() {
        let doc = parse(r#"<p:a xmlns:p="urn:x" p:attr="v"><p:b/></p:a>"#).unwrap();
        assert_eq!(doc.root.name, "p:a");
        assert_eq!(doc.root.attribute("p:attr"), Some("v"));
        assert_eq!(doc.root.child_elements().next().unwrap().name, "p:b");
    }

    #[test]
    fn error_on_mismatched_closing_tag() {
        let err = parse("<a><b></c></a>").unwrap_err();
        assert!(err.message.contains("mismatched closing tag"), "{err}");
    }

    #[test]
    fn error_on_unclosed_element() {
        let err = parse("<a><b>").unwrap_err();
        assert!(err.message.contains("unclosed"), "{err}");
    }

    #[test]
    fn error_on_trailing_garbage() {
        let err = parse("<a/><b/>").unwrap_err();
        assert!(err.message.contains("after the root element"), "{err}");
    }

    #[test]
    fn error_on_unknown_entity() {
        let err = parse("<a>&bogus;</a>").unwrap_err();
        assert!(err.message.contains("unknown entity"), "{err}");
    }

    #[test]
    fn error_positions_are_tracked() {
        let err = parse("<a>\n  <b x=></b>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn error_on_bad_attribute_value() {
        assert!(parse("<a x=1/>").is_err());
        assert!(parse("<a x=\"1/>").is_err());
        assert!(parse(r#"<a x="<"/>"#).is_err());
    }

    #[test]
    fn error_on_empty_input() {
        assert!(parse("").is_err());
        assert!(parse("   \n ").is_err());
    }

    #[test]
    fn unicode_content_is_preserved() {
        let doc = parse("<a>héllo wörld — ✓</a>").unwrap();
        assert_eq!(doc.root.text(), "héllo wörld — ✓");
    }
}
