//! XML serialization for the small DOM of [`super`].

use super::{XmlElement, XmlNode};

/// Escapes character data for use as element text.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Escapes character data for use inside a double-quoted attribute value.
pub fn escape_attribute(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            _ => out.push(ch),
        }
    }
    out
}

fn push_indent(out: &mut String, pretty: bool, indent: usize) {
    if pretty {
        for _ in 0..indent {
            out.push_str("  ");
        }
    }
}

fn push_newline(out: &mut String, pretty: bool) {
    if pretty {
        out.push('\n');
    }
}

/// Writes `element` (recursively) into `out`.
pub(super) fn write_element(element: &XmlElement, out: &mut String, pretty: bool, indent: usize) {
    push_indent(out, pretty, indent);
    out.push('<');
    out.push_str(&element.name);
    for (name, value) in &element.attributes {
        out.push(' ');
        out.push_str(name);
        out.push_str("=\"");
        out.push_str(&escape_attribute(value));
        out.push('"');
    }

    if element.children.is_empty() {
        out.push_str("/>");
        push_newline(out, pretty);
        return;
    }

    // An element whose only children are text nodes is written inline so that
    // pretty-printing does not inject whitespace into values.
    let only_text = element
        .children
        .iter()
        .all(|child| matches!(child, XmlNode::Text(_)));
    out.push('>');
    if only_text {
        for child in &element.children {
            if let XmlNode::Text(text) = child {
                out.push_str(&escape_text(text));
            }
        }
        out.push_str("</");
        out.push_str(&element.name);
        out.push('>');
        push_newline(out, pretty);
        return;
    }

    push_newline(out, pretty);
    for child in &element.children {
        match child {
            XmlNode::Element(el) => write_element(el, out, pretty, indent + 1),
            XmlNode::Text(text) => {
                push_indent(out, pretty, indent + 1);
                out.push_str(&escape_text(text));
                push_newline(out, pretty);
            }
            XmlNode::Comment(comment) => {
                push_indent(out, pretty, indent + 1);
                out.push_str("<!--");
                out.push_str(comment);
                out.push_str("-->");
                push_newline(out, pretty);
            }
        }
    }
    push_indent(out, pretty, indent);
    out.push_str("</");
    out.push_str(&element.name);
    out.push('>');
    push_newline(out, pretty);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xml::{parse, XmlDocument};

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_text("a<b>&c"), "a&lt;b&gt;&amp;c");
        assert_eq!(
            escape_attribute(r#"say "hi" & <go>"#),
            "say &quot;hi&quot; &amp; &lt;go&gt;"
        );
        assert_eq!(escape_attribute("line\nbreak"), "line&#10;break");
    }

    #[test]
    fn empty_element_is_self_closed() {
        let el = XmlElement::new("empty").with_attribute("k", "v");
        let mut out = String::new();
        el.write_xml(&mut out, false, 0);
        assert_eq!(out, r#"<empty k="v"/>"#);
    }

    #[test]
    fn text_only_elements_are_inlined() {
        let el = XmlElement::new("name").with_text("Alan Turing");
        let mut out = String::new();
        el.write_xml(&mut out, true, 0);
        assert_eq!(out, "<name>Alan Turing</name>\n");
    }

    #[test]
    fn pretty_printing_indents_children() {
        let el = XmlElement::new("a")
            .with_child(XmlElement::new("b").with_text("x"))
            .with_child(XmlElement::new("c"));
        let mut out = String::new();
        el.write_xml(&mut out, true, 0);
        assert_eq!(out, "<a>\n  <b>x</b>\n  <c/>\n</a>\n");
    }

    #[test]
    fn compact_printing_has_no_whitespace() {
        let el = XmlElement::new("a")
            .with_child(XmlElement::new("b").with_text("x"))
            .with_child(XmlElement::new("c"));
        let mut out = String::new();
        el.write_xml(&mut out, false, 0);
        assert_eq!(out, "<a><b>x</b><c/></a>");
    }

    #[test]
    fn round_trip_with_special_characters() {
        let doc = XmlDocument::new(
            XmlElement::new("a")
                .with_attribute("quote", "he said \"no\" & left")
                .with_child(XmlElement::new("t").with_text("1 < 2 & 3 > 2")),
        );
        let serialized = doc.to_xml_string(true);
        let reparsed = parse(&serialized).unwrap();
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn comments_round_trip() {
        let xml = "<a><!-- keep me --><b/></a>";
        let doc = parse(xml).unwrap();
        let serialized = doc.to_xml_string(false);
        assert!(serialized.contains("<!-- keep me -->"));
        let reparsed = parse(&serialized).unwrap();
        assert_eq!(doc, reparsed);
    }
}
