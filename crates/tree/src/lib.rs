//! # pxml-tree
//!
//! Unordered, labelled data trees — the data model of *Querying and Updating
//! Probabilistic Information in XML* (Abiteboul & Senellart, EDBT 2006) — plus
//! a small, self-contained XML parser/serializer and the conversion between
//! XML documents and data trees.
//!
//! The paper's data model is deliberately simple:
//!
//! * trees are **finite and unordered**;
//! * there is **no distinction between attribute and element nodes** (when an
//!   XML document is imported, attributes become child nodes);
//! * there is **no mixed content** (a node's children are either all elements
//!   or a single text value).
//!
//! The central type is [`Tree`], an arena-allocated tree of [`Label`]led
//! nodes addressed by [`NodeId`]. Because trees are unordered, equality is
//! *unordered isomorphism*, implemented in [`iso`] via canonical forms.
//!
//! ## Quick example
//!
//! ```
//! use pxml_tree::Tree;
//!
//! // Build  <a><b>foo</b><c/></a>  programmatically…
//! let mut t = Tree::new("a");
//! let b = t.add_element(t.root(), "b");
//! t.add_text(b, "foo");
//! t.add_element(t.root(), "c");
//!
//! // …or parse it from XML.
//! let t2 = pxml_tree::parse_data_tree("<a><c/><b>foo</b></a>").unwrap();
//!
//! // Data trees are unordered: the two trees are isomorphic.
//! assert!(t.isomorphic(&t2));
//! assert_eq!(t.node_count(), 4);
//! ```

pub mod chunk;
pub mod convert;
pub mod error;
pub mod iso;
pub mod label;
pub mod path;
pub mod tree;
pub mod xml;

pub use chunk::ChunkedVec;
pub use convert::{data_tree_to_xml, parse_data_tree, write_data_tree, xml_to_data_tree};
pub use error::{TreeError, XmlError};
pub use iso::{canonical_string, subtree_canonical_string, CanonicalForm};
pub use label::Label;
pub use tree::{NodeId, Tree};
pub use xml::{XmlDocument, XmlElement, XmlNode};
