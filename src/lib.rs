//! # pxml — probabilistic XML
//!
//! A Rust implementation of *Querying and Updating Probabilistic Information
//! in XML* (Abiteboul & Senellart, EDBT 2006): the possible-worlds and
//! fuzzy-tree models for imprecise semi-structured data, tree-pattern-with-
//! join queries, probabilistic update transactions, fuzzy-data
//! simplification, and a file-backed probabilistic XML warehouse fed by
//! imprecise source modules.
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tree`] | `pxml-tree` | unordered data trees, XML parsing/serialization |
//! | [`event`] | `pxml-event` | probabilistic events, conditions, formulas |
//! | [`query`] | `pxml-query` | TPWJ queries: syntax, matcher, answers |
//! | [`core`] | `pxml-core` | possible worlds, fuzzy trees, updates, simplification |
//! | [`store`] | `pxml-store` | PrXML format, document store, update journal |
//! | [`warehouse`] | `pxml-warehouse` | the probabilistic XML warehouse and source modules |
//! | [`gen`] | `pxml-gen` | seeded workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use pxml::prelude::*;
//!
//! // The fuzzy tree of slide 12: A(B[w1 ∧ ¬w2], C, D[w2]).
//! let mut doc = FuzzyTree::new("A");
//! let w1 = doc.add_event("w1", 0.8).unwrap();
//! let w2 = doc.add_event("w2", 0.7).unwrap();
//! let root = doc.root();
//! let b = doc.add_element(root, "B");
//! doc.set_condition(b, Condition::from_literals([Literal::pos(w1), Literal::neg(w2)])).unwrap();
//! doc.add_element(root, "C");
//! let d = doc.add_element(root, "D");
//! doc.set_condition(d, Condition::from_literal(Literal::pos(w2))).unwrap();
//!
//! // Query it: what is the probability that A has a B child?
//! let query = Pattern::parse("A { B }").unwrap();
//! let result = doc.query(&query);
//! assert!((result.matches[0].probability - 0.24).abs() < 1e-12);
//!
//! // Expand to possible worlds: the three worlds of the paper.
//! let worlds = doc.to_possible_worlds().unwrap();
//! assert_eq!(worlds.len(), 3);
//! ```

pub use pxml_core as core;
pub use pxml_event as event;
pub use pxml_gen as gen;
pub use pxml_query as query;
pub use pxml_store as store;
pub use pxml_tree as tree;
pub use pxml_warehouse as warehouse;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use pxml_core::{
        encode_possible_worlds, CoreError, FuzzyQueryResult, FuzzyTree, PossibleWorlds,
        ProbabilisticMatch, Simplifier, SimplifyReport, UpdateOperation, UpdateStats,
        UpdateTransaction,
    };
    pub use pxml_event::{Condition, EventId, EventTable, Formula, Literal, Valuation};
    pub use pxml_query::{Axis, MatchStrategy, Pattern, QueryAnswers};
    pub use pxml_store::DocumentStore;
    pub use pxml_tree::{parse_data_tree, write_data_tree, Label, NodeId, Tree};
    pub use pxml_warehouse::{Warehouse, WarehouseConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable() {
        let tree = parse_data_tree("<a><b>1</b></a>").unwrap();
        let fuzzy = FuzzyTree::from_tree(tree);
        let query = Pattern::parse("a { b }").unwrap();
        assert_eq!(fuzzy.query(&query).len(), 1);
    }
}
