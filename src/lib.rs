//! # pxml — probabilistic XML
//!
//! A Rust implementation of *Querying and Updating Probabilistic Information
//! in XML* (Abiteboul & Senellart, EDBT 2006): the possible-worlds and
//! fuzzy-tree models for imprecise semi-structured data, tree-pattern-with-
//! join queries, probabilistic update transactions, fuzzy-data
//! simplification, and a file-backed probabilistic XML warehouse fed by
//! imprecise source modules.
//!
//! This crate is a thin facade re-exporting the workspace crates:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`tree`] | `pxml-tree` | unordered data trees, XML parsing/serialization |
//! | [`event`] | `pxml-event` | probabilistic events, conditions, formulas |
//! | [`query`] | `pxml-query` | TPWJ queries: syntax, matcher, answers |
//! | [`core`] | `pxml-core` | possible worlds, fuzzy trees, updates, batches, simplification |
//! | [`store`] | `pxml-store` | `StorageBackend` trait, PrXML format, segment-journal `FsBackend`, `MemBackend` |
//! | [`warehouse`] | `pxml-warehouse` | sessions, document handles, staged transactions, source modules |
//! | [`gen`] | `pxml-gen` | seeded workload generators |
//!
//! ## Quickstart: the session API
//!
//! The documented default path is the transactional document-session API:
//! open a [`Session`](prelude::Session), get a [`Document`](prelude::Document)
//! handle, stage fluently built probabilistic updates into a
//! [`Txn`](prelude::Txn), and commit — the batch applies through the
//! policy-aware pipeline (inline simplification by default), lands in the
//! journal as one atomic entry, and is replayed by crash recovery.
//!
//! ```
//! use pxml::prelude::*;
//!
//! let dir = std::env::temp_dir().join(format!("pxml-doc-quickstart-{}", std::process::id()));
//! let session = Session::open(&dir, SessionConfig::default()).unwrap();
//! let people = session
//!     .create(
//!         "people",
//!         parse_data_tree("<directory><person><name>alice</name></person></directory>").unwrap(),
//!     )
//!     .unwrap();
//!
//! // An extraction module reports a phone number (confidence 0.8) and an
//! // e-mail address (confidence 0.6); both land in one atomic transaction.
//! let alice = Pattern::parse("person { name[=\"alice\"] }").unwrap();
//! let person = alice.root();
//! let receipt = people
//!     .begin()
//!     .stage(
//!         Update::matching(alice.clone())
//!             .insert_at(person, parse_data_tree("<phone>+33-1</phone>").unwrap())
//!             .with_confidence(0.8),
//!     )
//!     .stage(
//!         Update::matching(alice)
//!             .insert_at(person, parse_data_tree("<email>a@example.org</email>").unwrap())
//!             .with_confidence(0.6),
//!     )
//!     .commit()
//!     .unwrap();
//! assert_eq!(receipt.len(), 2);
//!
//! // Query: answers carry probabilities.
//! let result = people.query(&Pattern::parse("person { phone }").unwrap()).unwrap();
//! assert!((result.matches[0].probability - 0.8).abs() < 1e-12);
//! # drop(people); drop(session); let _ = std::fs::remove_dir_all(&dir);
//! ```
//!
//! The model layer stays available for in-memory work — build a
//! [`FuzzyTree`](prelude::FuzzyTree), query it, expand it to possible worlds
//! — exactly as in the paper's examples (see `examples/quickstart.rs`).
//!
//! ## Migrating from the pre-session API
//!
//! The free-standing warehouse calls (`Warehouse::open` / `update`,
//! `WarehouseConfig`, `DocumentStore::append_update`) survived release 0.2
//! as shims and are now **removed**; the session API is the only path:
//!
//! | Removed call | Replacement |
//! |---|---|
//! | `Warehouse::open(path, WarehouseConfig { auto_simplify_above_literals, .. })` | `Session::open(path, SessionConfig { simplify: SimplifyPolicy::…, .. })` |
//! | `warehouse.create_document(name, tree)` | `session.create(name, tree)` → [`Document`](prelude::Document) handle |
//! | `warehouse.query(name, &pattern)` | `document.query(&pattern)` |
//! | `warehouse.document(name)` | `document.snapshot()` |
//! | `UpdateTransaction::new(pattern, c)?.with_insert(t, sub)` | `Update::matching(pattern).insert_at(t, sub).with_confidence(c)` |
//! | `warehouse.update(name, &tx)` | `document.begin().stage(update).commit()` |
//! | `warehouse.simplify(name)` / `warehouse.checkpoint(name)` | `document.simplify()` / `document.checkpoint()` |
//! | `store.append_update(name, &tx)` | `store.append_batch(name, &[tx])` |
//! | `SessionConfig { checkpoint_every: Some(n)/None, .. }` | `SessionConfig { compaction: CompactionPolicy::EveryNBatches(n)/Never, .. }` |
//!
//! Storage is pluggable since 0.4: [`Session::open`](prelude::Session::open)
//! keeps its one-line file-backed default
//! ([`FsBackend`](prelude::FsBackend), an append-only segment journal with
//! O(batch) commits that auto-migrates pre-0.4 monolithic journals), while
//! `Session::open_with_backend` accepts any
//! [`StorageBackend`](prelude::StorageBackend) — e.g. the in-memory
//! [`MemBackend`](prelude::MemBackend). See the README's "Storage
//! architecture" section for the on-disk format.

pub use pxml_core as core;
pub use pxml_event as event;
pub use pxml_gen as gen;
pub use pxml_query as query;
pub use pxml_store as store;
pub use pxml_tree as tree;
pub use pxml_warehouse as warehouse;

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use pxml_core::{
        apply_batch, encode_possible_worlds, BatchStats, CoreError, FuzzyQueryResult, FuzzyTree,
        PossibleWorlds, ProbabilisticMatch, Simplifier, SimplifyPolicy, SimplifyReport, Update,
        UpdateOperation, UpdateStats, UpdateTransaction,
    };
    pub use pxml_event::{
        Bdd, BddRef, Condition, EventId, EventTable, Formula, Literal, Valuation,
    };
    pub use pxml_query::{Axis, MatchStrategy, Pattern, QueryAnswers};
    pub use pxml_store::{
        CommitPolicy, DocumentStore, FsBackend, FsOptions, MemBackend, StorageBackend,
    };
    pub use pxml_tree::{parse_data_tree, write_data_tree, Label, NodeId, Tree};
    pub use pxml_warehouse::{
        AsyncCommit, CompactionPolicy, DocSnapshot, Document, Session, SessionConfig, Txn,
        Warehouse,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_re_exports_are_usable() {
        let tree = parse_data_tree("<a><b>1</b></a>").unwrap();
        let fuzzy = FuzzyTree::from_tree(tree);
        let query = Pattern::parse("a { b }").unwrap();
        assert_eq!(fuzzy.query(&query).len(), 1);
    }

    #[test]
    fn session_types_are_in_the_prelude() {
        let dir = std::env::temp_dir().join(format!("pxml-facade-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let session = Session::open(&dir, SessionConfig::default()).unwrap();
        let doc = session
            .create("doc", parse_data_tree("<r><a/></r>").unwrap())
            .unwrap();
        let pattern = Pattern::parse("r { a }").unwrap();
        let receipt = doc
            .begin()
            .stage(
                Update::matching(pattern.clone())
                    .insert_at(pattern.root(), parse_data_tree("<b/>").unwrap())
                    .with_confidence(0.5),
            )
            .commit()
            .unwrap();
        assert_eq!(receipt.len(), 1);
        assert_eq!(
            doc.query(&Pattern::parse("r { b }").unwrap())
                .unwrap()
                .len(),
            1
        );
        drop(doc);
        drop(session);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
