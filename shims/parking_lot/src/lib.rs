//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: `Mutex` and `RwLock` with the non-poisoning `parking_lot` API,
//! implemented over `std::sync`. A poisoned std lock (a panic while holding
//! the guard) is recovered by taking the inner value, matching
//! `parking_lot`'s behaviour of simply not having poisoning.

use std::fmt;

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 0);
    }
}
