//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: `Mutex`, `RwLock` and `Condvar` with the non-poisoning
//! `parking_lot` API, implemented over `std::sync`. A poisoned std lock (a
//! panic while holding the guard) is recovered by taking the inner value,
//! matching `parking_lot`'s behaviour of simply not having poisoning.
//!
//! # Lock-order witness
//!
//! Beyond the stock API, every lock carries a static [`LockClass`] label
//! (assigned at construction with [`Mutex::with_class`] /
//! [`RwLock::with_class`]) and, under the `lock-witness` feature, every
//! acquisition is checked by a lockdep-style witness:
//!
//! - a **declared order** over the ranked classes
//!   (server-conns → server-admission → server-tenants → shard → doc-commit →
//!   doc-entry → group-committer → journal-registry →
//!   journal → device → commit-slot): acquiring a class at or below the highest rank
//!   already held by the current thread panics immediately, even if the
//!   schedule happened not to deadlock this time;
//! - a **global acquisition-order graph** over *all* classes: each
//!   "`A` held while acquiring `B`" observation adds an `A → B` edge, and an
//!   acquisition that would close a cycle (`B → … → A` already witnessed,
//!   possibly on another thread, in another test, at another time) panics
//!   with both class labels.
//!
//! The witness is panic-based rather than log-based so the existing test
//! battery doubles as a lockdep sweep: `cargo test --features lock-witness`
//! fails on the first ordering violation any test provokes. With the feature
//! disabled the instrumentation compiles away and the types behave exactly
//! like the plain shim. [`witness::enabled`] reports at runtime whether the
//! build is instrumented, so witness self-tests can skip themselves in
//! uninstrumented runs instead of failing.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// Static identity of a lock for the lock-order witness.
///
/// The ranked classes mirror the engine's declared acquisition order (see
/// README "Concurrency correctness"); a thread must only ever acquire them
/// in strictly increasing rank. The `Test*` classes are unranked — they
/// participate only in the acquisition-order graph's cycle detection — and
/// exist for the witness's own self-tests. `Unclassified` is what
/// [`Mutex::new`] assigns; the repo linter (`pxml-check`) keeps engine
/// crates from constructing unclassified locks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LockClass {
    /// The server's connection registry — stream handles and join handles of
    /// live connections, touched by the accept loop and shutdown (rank 0).
    ServerConns,
    /// An admission gate's in-flight counter; held only inside
    /// `try_enter`/`leave`, never across an engine call (rank 1).
    ServerAdmission,
    /// The server's tenant LRU registry; held while lazily opening a tenant
    /// warehouse, so it ranks ahead of every engine class (rank 2).
    ServerTenants,
    /// A warehouse shard's slot map (rank 3).
    Shard,
    /// One document's commit pipeline — the writer-serialization mutex held
    /// across apply → journal → snapshot swap (rank 4).
    DocCommit,
    /// One document's published-state cell behind its shard slot; only ever
    /// held for the O(1) snapshot read or pointer swap (rank 5).
    DocEntry,
    /// The group committer's shared window (rank 6).
    GroupCommitter,
    /// The store's name → journal-handle registry (rank 7).
    JournalRegistry,
    /// One document's journal write handle (rank 8).
    Journal,
    /// The simulated storage device gate (rank 9).
    Device,
    /// A group-commit slot's error cell (rank 10).
    CommitSlot,
    /// Unranked class for witness self-tests.
    TestA,
    /// Unranked class for witness self-tests.
    TestB,
    /// Unranked class for witness self-tests.
    TestC,
    /// No class declared; cycle-checked but unranked.
    Unclassified,
}

impl LockClass {
    /// The label used in witness panic messages and docs.
    pub const fn label(self) -> &'static str {
        match self {
            LockClass::ServerConns => "server-conns",
            LockClass::ServerAdmission => "server-admission",
            LockClass::ServerTenants => "server-tenants",
            LockClass::Shard => "shard",
            LockClass::DocCommit => "doc-commit",
            LockClass::DocEntry => "doc-entry",
            LockClass::GroupCommitter => "group-committer",
            LockClass::JournalRegistry => "journal-registry",
            LockClass::Journal => "journal",
            LockClass::Device => "device",
            LockClass::CommitSlot => "commit-slot",
            LockClass::TestA => "test-a",
            LockClass::TestB => "test-b",
            LockClass::TestC => "test-c",
            LockClass::Unclassified => "unclassified",
        }
    }

    /// Position in the declared acquisition order; `None` for classes that
    /// are only cycle-checked.
    pub const fn rank(self) -> Option<u8> {
        match self {
            LockClass::ServerConns => Some(0),
            LockClass::ServerAdmission => Some(1),
            LockClass::ServerTenants => Some(2),
            LockClass::Shard => Some(3),
            LockClass::DocCommit => Some(4),
            LockClass::DocEntry => Some(5),
            LockClass::GroupCommitter => Some(6),
            LockClass::JournalRegistry => Some(7),
            LockClass::Journal => Some(8),
            LockClass::Device => Some(9),
            LockClass::CommitSlot => Some(10),
            LockClass::TestA | LockClass::TestB | LockClass::TestC | LockClass::Unclassified => {
                None
            }
        }
    }

    #[cfg_attr(not(feature = "lock-witness"), allow(dead_code))]
    const fn index(self) -> usize {
        match self {
            LockClass::ServerConns => 0,
            LockClass::ServerAdmission => 1,
            LockClass::ServerTenants => 2,
            LockClass::Shard => 3,
            LockClass::DocCommit => 4,
            LockClass::DocEntry => 5,
            LockClass::GroupCommitter => 6,
            LockClass::JournalRegistry => 7,
            LockClass::Journal => 8,
            LockClass::Device => 9,
            LockClass::CommitSlot => 10,
            LockClass::TestA => 11,
            LockClass::TestB => 12,
            LockClass::TestC => 13,
            LockClass::Unclassified => 14,
        }
    }
}

impl fmt::Display for LockClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The lockdep-style witness behind the `lock-witness` feature (see the
/// crate docs). Uninstrumented builds keep the module with no-op hooks so
/// callers can probe [`witness::enabled`] unconditionally.
#[cfg(feature = "lock-witness")]
pub mod witness {
    use super::LockClass;
    use std::cell::RefCell;
    use std::sync::{Mutex as StdMutex, OnceLock};

    const CLASSES: usize = 15;

    thread_local! {
        /// Classes of the locks the current thread holds, in acquisition
        /// order (a stack, except guards may be released out of order).
        static HELD: RefCell<Vec<LockClass>> = const { RefCell::new(Vec::new()) };
    }

    /// Process-global acquisition-order graph: `edge[a][b]` records that
    /// some thread acquired class `b` while holding class `a`.
    struct Graph {
        edge: [[bool; CLASSES]; CLASSES],
    }

    fn graph() -> &'static StdMutex<Graph> {
        static GRAPH: OnceLock<StdMutex<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| {
            StdMutex::new(Graph {
                edge: [[false; CLASSES]; CLASSES],
            })
        })
    }

    /// Is `to` reachable from `from` over recorded edges (`from == to`
    /// counts as reachable, so same-class nesting closes a cycle)?
    fn reaches(g: &Graph, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut visited = [false; CLASSES];
        let mut stack = vec![from];
        while let Some(node) = stack.pop() {
            for (next, &has_edge) in g.edge[node].iter().enumerate() {
                if !has_edge || visited[next] {
                    continue;
                }
                if next == to {
                    return true;
                }
                visited[next] = true;
                stack.push(next);
            }
        }
        false
    }

    /// `true`: this build carries the witness.
    pub fn enabled() -> bool {
        true
    }

    pub(crate) fn on_acquire(class: LockClass) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if !held.is_empty() {
                check(&held, class);
            }
            held.push(class);
        });
    }

    pub(crate) fn on_release(class: LockClass) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|&h| h == class) {
                held.remove(pos);
            }
        });
    }

    /// Panics if acquiring `class` while `held` would violate the declared
    /// rank order or close a cycle in the global graph. Violating edges are
    /// *not* recorded, so one caught inversion does not poison the graph
    /// for the rest of the process.
    fn check(held: &[LockClass], class: LockClass) {
        for &h in held {
            if let (Some(held_rank), Some(new_rank)) = (h.rank(), class.rank()) {
                if new_rank <= held_rank {
                    panic!(
                        "lock-order witness: acquiring `{class}` while holding `{h}` \
                         violates the declared order server-conns -> server-admission -> \
                         server-tenants -> shard -> doc-commit -> doc-entry -> \
                         group-committer -> journal-registry -> journal -> device -> \
                         commit-slot"
                    );
                }
            }
        }
        let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
        for &h in held {
            let (from, to) = (h.index(), class.index());
            if g.edge[from][to] {
                continue;
            }
            if reaches(&g, to, from) {
                panic!(
                    "lock-order witness: acquiring `{class}` while holding `{h}` \
                     closes a cycle in the acquisition-order graph (a `{class}` was \
                     already held, directly or transitively, while acquiring `{h}`)"
                );
            }
            g.edge[from][to] = true;
        }
    }
}

/// No-op witness hooks for uninstrumented builds.
#[cfg(not(feature = "lock-witness"))]
pub mod witness {
    use super::LockClass;

    /// `false`: this build is not instrumented.
    pub fn enabled() -> bool {
        false
    }

    #[inline(always)]
    pub(crate) fn on_acquire(_class: LockClass) {}

    #[inline(always)]
    pub(crate) fn on_release(_class: LockClass) {}
}

pub struct Mutex<T: ?Sized> {
    class: LockClass,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex::with_class(LockClass::Unclassified, value)
    }

    /// A mutex labelled with its [`LockClass`] for the lock-order witness.
    pub const fn with_class(class: LockClass, value: T) -> Self {
        Mutex {
            class,
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The class declared at construction.
    pub fn class(&self) -> LockClass {
        self.class
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        // Check before blocking: a would-be deadlock should panic with the
        // class pair, not hang.
        witness::on_acquire(self.class);
        MutexGuard {
            class: self.class,
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        witness::on_acquire(self.class);
        Some(MutexGuard {
            class: self.class,
            inner: Some(inner),
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard of a [`Mutex`]. The inner std guard sits behind an `Option`
/// only so [`Condvar::wait`] can atomically give the lock up and take it
/// back; user code always observes it present.
pub struct MutexGuard<'a, T: ?Sized> {
    class: LockClass,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("mutex guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("mutex guard present")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            witness::on_release(self.class);
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

pub struct RwLock<T: ?Sized> {
    class: LockClass,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock::with_class(LockClass::Unclassified, value)
    }

    /// An rwlock labelled with its [`LockClass`] for the lock-order witness.
    pub const fn with_class(class: LockClass, value: T) -> Self {
        RwLock {
            class,
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The class declared at construction.
    pub fn class(&self) -> LockClass {
        self.class
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        witness::on_acquire(self.class);
        RwLockReadGuard {
            class: self.class,
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        witness::on_acquire(self.class);
        RwLockWriteGuard {
            class: self.class,
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shared-read RAII guard of an [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    class: LockClass,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(self.class);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Exclusive-write RAII guard of an [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    class: LockClass,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        witness::on_release(self.class);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// `parking_lot`-style condition variable: waits take `&mut MutexGuard`
/// instead of consuming and returning the guard.
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically releases the guard's lock and blocks until notified; the
    /// lock is reacquired (re-checked by the witness) before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("mutex guard present");
        witness::on_release(guard.class);
        let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
        witness::on_acquire(guard.class);
        guard.inner = Some(inner);
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("mutex guard present");
        witness::on_release(guard.class);
        let (inner, timed_out) = match self.0.wait_timeout(inner, timeout) {
            Ok((guard, result)) => (guard, result.timed_out()),
            Err(poisoned) => {
                let (guard, result) = poisoned.into_inner();
                (guard, result.timed_out())
            }
        };
        witness::on_acquire(guard.class);
        guard.inner = Some(inner);
        WaitTimeoutResult(timed_out)
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, LockClass, Mutex, RwLock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn classes_are_recorded() {
        let m = Mutex::with_class(LockClass::Journal, 0);
        assert_eq!(m.class(), LockClass::Journal);
        assert_eq!(Mutex::new(0).class(), LockClass::Unclassified);
        let l = RwLock::with_class(LockClass::Shard, 0);
        assert_eq!(l.class(), LockClass::Shard);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the lock stays usable.
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut guard = m.lock();
        let result = cv.wait_for(&mut guard, Duration::from_millis(5));
        assert!(result.timed_out());
        // The guard survives the wait and still protects the value.
        *guard = true;
        drop(guard);
        assert!(*m.lock());
    }

    #[test]
    fn condvar_handoff() {
        let shared = Arc::new((Mutex::new(0), Condvar::new()));
        let clone = shared.clone();
        let worker = std::thread::spawn(move || {
            let (lock, cv) = &*clone;
            let mut value = lock.lock();
            *value = 7;
            drop(value);
            cv.notify_all();
        });
        let (lock, cv) = &*shared;
        let mut value = lock.lock();
        while *value == 0 {
            cv.wait(&mut value);
        }
        assert_eq!(*value, 7);
        worker.join().expect("worker");
    }
}
