//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness: the `criterion_group!`/`criterion_main!` macros,
//! benchmark groups with `sample_size`/`warm_up_time`/`measurement_time`,
//! `bench_function`, `bench_with_input` and `Bencher::iter`.
//!
//! Measurement is deliberately simple — median over `sample_size` timed
//! samples after a warm-up phase — and results are printed as a table to
//! stdout. It honours an optional substring filter argument, like the real
//! harness under `cargo bench -- <filter>`.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: `group/function` or `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// The top-level harness state.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` (and test-harness flags may appear);
        // treat the first non-flag argument as a substring filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = group_name.into();
        println!("\n{name}");
        println!("{}", "-".repeat(name.len().max(24)));
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 20,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(400),
        }
    }

    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
    }
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some(estimate) => println!("{full:<56} {}", format_estimate(estimate)),
            None => println!("{full:<56} (no measurement: Bencher::iter never called)"),
        }
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Timing state handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<Estimate>,
}

#[derive(Clone, Copy)]
struct Estimate {
    median_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Measures the median wall-clock time of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: also calibrates iterations-per-sample.
        let warm_up_start = Instant::now();
        let mut warm_up_iters: u64 = 0;
        while warm_up_start.elapsed() < self.warm_up_time || warm_up_iters == 0 {
            black_box(routine());
            warm_up_iters += 1;
        }
        let per_iter = warm_up_start.elapsed().as_secs_f64() / warm_up_iters as f64;
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);

        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Estimate {
            median_ns: samples[samples.len() / 2],
            min_ns: samples[0],
            max_ns: samples[samples.len() - 1],
            iterations: iters_per_sample * self.sample_size as u64,
        });
    }
}

fn format_estimate(e: Estimate) -> String {
    format!(
        "time: [{} {} {}]  ({} iters)",
        format_ns(e.min_ns),
        format_ns(e.median_ns),
        format_ns(e.max_ns),
        e.iterations
    )
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Mirrors `criterion::criterion_group!`: defines a function running each
/// target against a shared [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: a `main` that runs every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut criterion = Criterion { filter: None };
        let mut group = criterion.benchmark_group("shim_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("param", 4), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
