//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! workspace vendors the small subset of the `rand` 0.8 API it actually uses:
//! [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] (over integer and
//! float ranges), [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64 — a high-quality,
//! reproducible, non-cryptographic generator. It intentionally does *not*
//! produce the same streams as the real `rand::rngs::StdRng` (ChaCha12); all
//! workloads in this workspace are seeded locally, so only reproducibility
//! within the workspace matters.

use core::ops::{Range, RangeInclusive};

/// The raw source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A sample from the "standard" distribution of `T` (uniform over the
    /// type's natural domain; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        self.gen::<f64>() < p
    }

    /// A uniform sample from `range`, which may be half-open or inclusive.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` by 128-bit widening multiply (negligible
/// bias for the spans used here, no rejection loop).
fn uniform_below(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128).wrapping_mul(span)) >> 64
}

macro_rules! int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&y));
            let f = rng.gen_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&f));
            let n = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        // Crude uniformity check: the mean of 10k samples is near 1/2.
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.03);
    }
}
