//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate: the subset of the strategy combinators and macros this workspace
//! uses, without shrinking.
//!
//! Supported surface:
//!
//! * integer range strategies (`0u8..6`, `1u32..=100`, …), tuples of
//!   strategies, [`collection::vec`], [`option::of`], [`strategy::any`],
//!   [`strategy::Strategy::prop_map`], [`strategy::Strategy::prop_recursive`],
//!   [`strategy::Just`];
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header, and the [`prop_assert!`] /
//!   [`prop_assert_eq!`] / [`prop_assert_ne!`] macros;
//! * deterministic seeding: each test function derives its seed from its own
//!   name, overridable with the `PROPTEST_SEED` environment variable, and
//!   failures report the case number so a run is reproducible.
//!
//! Unlike the real proptest there is no shrinking: a failing case is
//! reported as-is (with its `Debug` form when available via `prop_assert*`
//! messages).

pub mod test_runner {
    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case (carried by `prop_assert*`).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Derives the RNG seed for a property function: `PROPTEST_SEED` if set,
    /// otherwise a stable hash of the function name.
    pub fn seed_for(test_name: &str) -> u64 {
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            match seed.trim().parse::<u64>() {
                Ok(seed) => return seed,
                Err(_) => panic!(
                    "PROPTEST_SEED is set but not a u64: {seed:?} \
                     (pass a decimal integer)"
                ),
            }
        }
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for byte in test_name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        seed
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of random values. Unlike the real proptest there is no
    /// value tree and no shrinking — `generate` produces a value directly.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<U, F>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, map }
        }

        /// Builds a recursive strategy by applying `recurse` `depth` times to
        /// the leaf strategy. The `_desired_size` / `_expected_branch_size`
        /// hints of the real API are accepted and ignored; recursion is
        /// bounded because the innermost strategy is the leaf itself.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut current = self.boxed();
            for _ in 0..depth {
                current = recurse(current).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let strategy = self;
            BoxedStrategy(Rc::new(move |rng| strategy.generate(rng)))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut StdRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut StdRng) -> V {
            (self.0)(rng)
        }
    }

    /// `Strategy::prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        map: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.map)(self.inner.generate(rng))
        }
    }

    /// A strategy that always produces clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;

        fn generate(&self, _rng: &mut StdRng) -> V {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident : $index:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$index.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }

    /// Types with a canonical strategy, for [`any`].
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen::<$t>()
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.gen::<f64>()
        }
    }

    /// The canonical strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// The number of elements a collection strategy produces (inclusive).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max: range.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            assert!(range.start() <= range.end(), "empty size range");
            SizeRange {
                min: *range.start(),
                max: *range.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, `Some` three times out of four
    /// (matching the real proptest's default weighting).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            if rng.gen_bool(0.75) {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    pub fn of<S: Strategy>(element: S) -> OptionStrategy<S> {
        OptionStrategy(element)
    }
}

#[doc(hidden)]
pub use rand::SeedableRng as __SeedableRng;

pub mod prelude {
    pub use crate::collection;
    pub use crate::option;
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use rand::rngs::StdRng as TestRng;
}

/// Fails the current property case (early-returns a `TestCaseError`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!(left == right)` with a `Debug` report of both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `prop_assert!(left != right)` with a `Debug` report of both sides.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// The `proptest!` block macro: an optional `#![proptest_config(...)]`
/// header followed by `fn name(binding in strategy, ...) { body }` items,
/// each expanded to a deterministic multi-case test function.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            let seed = $crate::test_runner::seed_for(stringify!($name));
            let mut rng =
                <$crate::prelude::TestRng as $crate::__SeedableRng>::seed_from_u64(seed);
            for case in 0..config.cases {
                let ($($binding,)+) = ($($strategy.generate(&mut rng),)+);
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(error) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{} (seed {}):\n{}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        seed,
                        error
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair_strategy() -> impl Strategy<Value = (u8, Vec<bool>)> {
        (0u8..10, collection::vec(any::<bool>(), 0..5))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 1u32..=6) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=6).contains(&y));
        }

        #[test]
        fn map_and_tuple_compose((x, flags) in pair_strategy()) {
            prop_assert!(x < 10);
            prop_assert!(flags.len() < 5);
        }

        #[test]
        fn option_of_yields_both(value in option::of(0u8..4)) {
            if let Some(v) = value {
                prop_assert!(v < 4);
            }
        }
    }

    #[derive(Debug, Clone)]
    struct Node {
        children: Vec<Node>,
    }

    proptest! {
        #[test]
        fn recursive_strategy_is_bounded(
            node in Just(Node { children: vec![] }).prop_recursive(3, 24, 4, |inner| {
                collection::vec(inner, 0..4).prop_map(|children| Node { children })
            })
        ) {
            fn count(node: &Node) -> usize {
                1 + node.children.iter().map(count).sum::<usize>()
            }
            // depth 3, fanout < 4 => at most 1 + 3 + 9 + 27 nodes.
            prop_assert!(count(&node) <= 40);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(
            crate::test_runner::seed_for("some_test"),
            crate::test_runner::seed_for("some_test")
        );
        assert_ne!(
            crate::test_runner::seed_for("some_test"),
            crate::test_runner::seed_for("other_test")
        );
    }
}
