//! Managing imprecise information-extraction output — the motivating use
//! case of the paper's introduction — on the session API.
//!
//! Several extraction modules report facts about people with confidence
//! values; each module's facts are staged into one atomically committed
//! transaction. Queries return answers with probabilities, and contradictory
//! evidence (a data-cleaning pass) is handled by probabilistic deletion.
//!
//! Run with `cargo run --example information_extraction`.

use pxml::prelude::*;

/// One extracted fact: who, what, the value, and the extractor's confidence.
struct ExtractedFact {
    person: &'static str,
    field: &'static str,
    value: &'static str,
    confidence: f64,
}

fn insert_fact(fact: &ExtractedFact) -> Update {
    let pattern =
        Pattern::parse(&format!("person {{ name[=\"{}\"] }}", fact.person)).expect("valid query");
    let person = pattern.root();
    let mut subtree = Tree::new(fact.field);
    subtree.add_text(subtree.root(), fact.value);
    Update::matching(pattern)
        .insert_at(person, subtree)
        .with_confidence(fact.confidence)
}

fn main() {
    let storage =
        std::env::temp_dir().join(format!("pxml-extraction-example-{}", std::process::id()));
    let session = Session::open(&storage, SessionConfig::default()).expect("session opens");

    // The initial directory holds two people whose names are certain
    // (human-curated seed data).
    let directory = session
        .create(
            "directory",
            parse_data_tree(
                "<directory>\
                   <person><name>ada-lovelace</name></person>\
                   <person><name>alan-turing</name></person>\
                 </directory>",
            )
            .expect("valid XML"),
        )
        .expect("document created");

    // Streams of extracted facts with heterogeneous confidences: a precise
    // web extractor, a noisier NLP pipeline, and an OCR pass. Each module's
    // output is one staged transaction.
    let modules: &[(&str, &[ExtractedFact])] = &[
        (
            "web-extractor",
            &[
                ExtractedFact {
                    person: "alan-turing",
                    field: "affiliation",
                    value: "bletchley-park",
                    confidence: 0.95,
                },
                ExtractedFact {
                    person: "ada-lovelace",
                    field: "affiliation",
                    value: "analytical-engine-society",
                    confidence: 0.7,
                },
            ],
        ),
        (
            "nlp-pipeline",
            &[ExtractedFact {
                person: "alan-turing",
                field: "email",
                value: "turing@npl.example",
                confidence: 0.55,
            }],
        ),
        (
            "ocr",
            &[
                ExtractedFact {
                    person: "ada-lovelace",
                    field: "birth-year",
                    value: "1815",
                    confidence: 0.9,
                },
                ExtractedFact {
                    person: "ada-lovelace",
                    field: "birth-year",
                    value: "1816",
                    confidence: 0.4,
                },
            ],
        ),
    ];

    println!("== Ingesting extracted facts (one txn per module) ==");
    for (module, facts) in modules {
        let mut txn = directory.begin();
        for fact in *facts {
            txn = txn.stage(insert_fact(fact));
            println!(
                "  [{module:<13}] {}/{} = {:<28} confidence {:.2}",
                fact.person, fact.field, fact.value, fact.confidence
            );
        }
        let receipt = txn.commit().expect("commit succeeds");
        println!(
            "  [{module:<13}] committed {} update(s) atomically\n",
            receipt.len()
        );
    }

    // Query the directory: per-answer probabilities.
    println!("== What do we believe about birth years? ==");
    let query = Pattern::parse("person { name, birth-year }").expect("valid query");
    let birth_year_node = query
        .node_ids()
        .nth(2)
        .expect("birth-year is the third node");
    let snapshot = directory.snapshot().expect("document exists");
    let result = directory.query(&query).expect("query runs");
    for answer in &result.matches {
        let original = answer.matching.image(birth_year_node);
        let year = snapshot.tree().node_value(original).unwrap_or_default();
        println!(
            "  birth-year answer (value {year:?}) holds with probability {:.3}",
            answer.probability
        );
    }

    // A data-cleaning module decides the low-confidence e-mail was spurious
    // and retracts it with confidence 0.8.
    println!("\n== Data cleaning: retract alan-turing's e-mail (confidence 0.8) ==");
    let retract_pattern =
        Pattern::parse("person { name[=\"alan-turing\"], email }").expect("valid query");
    let email_node = retract_pattern
        .node_ids()
        .nth(2)
        .expect("email is the third node");
    directory
        .begin()
        .stage(
            Update::matching(retract_pattern)
                .delete_at(email_node)
                .with_confidence(0.8),
        )
        .commit()
        .expect("commit succeeds");

    let email_query = Pattern::parse("person { email }").expect("valid query");
    let email_result = directory.query(&email_query).expect("query runs");
    let still_there: f64 = email_result
        .matches
        .iter()
        .map(|m| m.probability)
        .fold(0.0_f64, f64::max);
    println!("  P(the directory still records an e-mail) = {still_there:.3}");

    // Housekeeping already happened inline (the default SimplifyPolicy), so
    // an explicit pass has little left to do.
    let report = directory.simplify().expect("simplification succeeds");
    println!(
        "\nexplicit simplification after inline maintenance: {} node(s) merged, {} event(s) dropped",
        report.merged_nodes, report.removed_events
    );

    println!("\n== Final document ==");
    println!(
        "{}",
        pxml::store::serialize_fuzzy_document(
            &directory.snapshot().expect("document exists"),
            true
        )
    );

    drop(directory);
    drop(session);
    let _ = std::fs::remove_dir_all(&storage);
}
