//! Managing imprecise information-extraction output — the motivating use
//! case of the paper's introduction.
//!
//! Several extraction modules report facts about people with confidence
//! values; the fuzzy-tree document accumulates them, queries return answers
//! with probabilities, and contradictory evidence (a data-cleaning pass) is
//! handled by probabilistic deletion.
//!
//! Run with `cargo run --example information_extraction`.

use pxml::prelude::*;

/// One extracted fact: who, what, the value, and the extractor's confidence.
struct ExtractedFact {
    person: &'static str,
    field: &'static str,
    value: &'static str,
    confidence: f64,
    module: &'static str,
}

fn insert_fact(fact: &ExtractedFact) -> UpdateTransaction {
    let pattern =
        Pattern::parse(&format!("person {{ name[=\"{}\"] }}", fact.person)).expect("valid query");
    let target = pattern.root();
    let mut subtree = Tree::new(fact.field);
    subtree.add_text(subtree.root(), fact.value);
    UpdateTransaction::new(pattern, fact.confidence)
        .expect("confidence within [0, 1]")
        .with_insert(target, subtree)
}

fn main() {
    // The initial directory holds two people whose names are certain
    // (human-curated seed data).
    let mut directory = FuzzyTree::from_tree(
        parse_data_tree(
            "<directory>\
               <person><name>ada-lovelace</name></person>\
               <person><name>alan-turing</name></person>\
             </directory>",
        )
        .expect("valid XML"),
    );

    // A stream of extracted facts with heterogeneous confidences: a precise
    // web extractor, a noisier NLP pipeline, and an OCR pass.
    let facts = [
        ExtractedFact {
            person: "alan-turing",
            field: "affiliation",
            value: "bletchley-park",
            confidence: 0.95,
            module: "web-extractor",
        },
        ExtractedFact {
            person: "alan-turing",
            field: "email",
            value: "turing@npl.example",
            confidence: 0.55,
            module: "nlp-pipeline",
        },
        ExtractedFact {
            person: "ada-lovelace",
            field: "affiliation",
            value: "analytical-engine-society",
            confidence: 0.7,
            module: "web-extractor",
        },
        ExtractedFact {
            person: "ada-lovelace",
            field: "birth-year",
            value: "1815",
            confidence: 0.9,
            module: "ocr",
        },
        ExtractedFact {
            person: "ada-lovelace",
            field: "birth-year",
            value: "1816",
            confidence: 0.4,
            module: "ocr",
        },
    ];

    println!("== Ingesting extracted facts ==");
    for fact in &facts {
        let stats = insert_fact(fact)
            .apply_to_fuzzy(&mut directory)
            .expect("update applies");
        println!(
            "  [{:<13}] {}/{} = {:<28} confidence {:.2}  ({} match)",
            fact.module,
            fact.person,
            fact.field,
            fact.value,
            fact.confidence,
            stats.applied_matches
        );
    }

    // Query the directory: per-answer probabilities.
    println!("\n== What do we believe about birth years? ==");
    let query = Pattern::parse("person { name, birth-year }").expect("valid query");
    let birth_year_node = query
        .node_ids()
        .nth(2)
        .expect("birth-year is the third node");
    let result = directory.query(&query);
    for answer in &result.matches {
        let original = answer.matching.image(birth_year_node);
        let year = directory.tree().node_value(original).unwrap_or_default();
        println!(
            "  birth-year answer (value {year:?}) holds with probability {:.3}",
            answer.probability
        );
    }

    // A data-cleaning module decides the low-confidence e-mail was spurious
    // and retracts it with confidence 0.8.
    println!("\n== Data cleaning: retract alan-turing's e-mail (confidence 0.8) ==");
    let retract_pattern =
        Pattern::parse("person { name[=\"alan-turing\"], email }").expect("valid query");
    let email_node = retract_pattern
        .node_ids()
        .nth(2)
        .expect("email is the third node");
    let retraction = UpdateTransaction::new(retract_pattern, 0.8)
        .expect("valid confidence")
        .with_delete(email_node);
    retraction
        .apply_to_fuzzy(&mut directory)
        .expect("update applies");

    let email_query = Pattern::parse("person { email }").expect("valid query");
    println!(
        "  P(the directory still records an e-mail) = {:.3}",
        directory.selection_probability(&email_query)
    );

    // Housekeeping: simplification keeps the accumulated bookkeeping small.
    let before = directory.condition_literal_count();
    let report = Simplifier::new()
        .run(&mut directory)
        .expect("simplification succeeds");
    println!(
        "\nsimplified: {} → {} condition literals ({} node(s) merged, {} event(s) dropped)",
        before,
        directory.condition_literal_count(),
        report.merged_nodes,
        report.removed_events
    );

    println!("\n== Final document ==");
    println!(
        "{}",
        pxml::store::serialize_fuzzy_document(&directory, true)
    );
}
