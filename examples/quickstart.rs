//! Quickstart: build the paper's running example, query it, update it.
//!
//! Run with `cargo run --example quickstart`.

use pxml::prelude::*;

fn main() {
    // -----------------------------------------------------------------------
    // 1. Build the slide-12 fuzzy tree: A(B[w1 ∧ ¬w2], C, D[w2]).
    // -----------------------------------------------------------------------
    let mut doc = FuzzyTree::new("A");
    let w1 = doc.add_event("w1", 0.8).expect("fresh event");
    let w2 = doc.add_event("w2", 0.7).expect("fresh event");
    let root = doc.root();
    let b = doc.add_element(root, "B");
    doc.set_condition(
        b,
        Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
    )
    .expect("B is not the root");
    doc.add_element(root, "C");
    let d = doc.add_element(root, "D");
    doc.set_condition(d, Condition::from_literal(Literal::pos(w2)))
        .expect("D is not the root");

    println!("== The fuzzy tree ==");
    println!("{}", doc.tree());
    println!("{}", doc.events());

    // -----------------------------------------------------------------------
    // 2. Possible-worlds semantics: the three worlds of the paper.
    // -----------------------------------------------------------------------
    println!("== Possible worlds ==");
    let worlds = doc
        .to_possible_worlds()
        .expect("few events, cheap expansion");
    for (tree, probability) in worlds.iter() {
        println!("  P = {probability:.2}   {tree}");
    }

    // -----------------------------------------------------------------------
    // 3. Tree-pattern queries with probabilities.
    // -----------------------------------------------------------------------
    println!("\n== Queries ==");
    for text in ["A { B }", "A { D }", "A { B, D }"] {
        let query = Pattern::parse(text).expect("valid query syntax");
        let probability = doc.selection_probability(&query);
        println!("  P({text})  =  {probability:.3}");
    }

    // -----------------------------------------------------------------------
    // 4. A probabilistic update: insert E below A when D is present, with
    //    confidence 0.9, then look at the document again.
    // -----------------------------------------------------------------------
    let pattern = Pattern::parse("A { D }").expect("valid query syntax");
    let target = pattern.root();
    let update = UpdateTransaction::new(pattern, 0.9)
        .expect("valid confidence")
        .with_insert(
            target,
            parse_data_tree("<E>found-it</E>").expect("valid XML"),
        );
    let mut updated = doc.clone();
    let stats = update.apply_to_fuzzy(&mut updated).expect("update applies");
    println!("\n== After inserting E (confidence 0.9, when D present) ==");
    println!(
        "  matches: {}, inserted nodes: {}",
        stats.match_count, stats.inserted_nodes
    );
    println!("  {}", updated.tree());
    let e_query = Pattern::parse("A { E }").expect("valid query syntax");
    println!(
        "  P(A has an E child) = {:.3}",
        updated.selection_probability(&e_query)
    );

    // -----------------------------------------------------------------------
    // 5. The two semantics agree (the commutation theorems).
    // -----------------------------------------------------------------------
    let via_worlds = doc.to_possible_worlds().expect("expansion").update(&update);
    let via_fuzzy = updated.to_possible_worlds().expect("expansion");
    println!(
        "\nupdate/semantics diagram commutes: {}",
        via_worlds.equivalent(&via_fuzzy, 1e-9)
    );
}
