//! Quickstart: build the paper's running example, query it, then work with it
//! through the transactional session API.
//!
//! Run with `cargo run --example quickstart`.

use pxml::prelude::*;

fn main() {
    // -----------------------------------------------------------------------
    // 1. The model layer: the slide-12 fuzzy tree A(B[w1 ∧ ¬w2], C, D[w2]).
    // -----------------------------------------------------------------------
    let mut doc = FuzzyTree::new("A");
    let w1 = doc.add_event("w1", 0.8).expect("fresh event");
    let w2 = doc.add_event("w2", 0.7).expect("fresh event");
    let root = doc.root();
    let b = doc.add_element(root, "B");
    doc.set_condition(
        b,
        Condition::from_literals([Literal::pos(w1), Literal::neg(w2)]),
    )
    .expect("B is not the root");
    doc.add_element(root, "C");
    let d = doc.add_element(root, "D");
    doc.set_condition(d, Condition::from_literal(Literal::pos(w2)))
        .expect("D is not the root");

    println!("== The fuzzy tree ==");
    println!("{}", doc.tree());
    println!("{}", doc.events());

    // -----------------------------------------------------------------------
    // 2. Possible-worlds semantics: the three worlds of the paper.
    // -----------------------------------------------------------------------
    println!("== Possible worlds ==");
    let worlds = doc
        .to_possible_worlds()
        .expect("few events, cheap expansion");
    for (tree, probability) in worlds.iter() {
        println!("  P = {probability:.2}   {tree}");
    }

    // -----------------------------------------------------------------------
    // 3. Tree-pattern queries with probabilities.
    // -----------------------------------------------------------------------
    println!("\n== Queries ==");
    for text in ["A { B }", "A { D }", "A { B, D }"] {
        let query = Pattern::parse(text).expect("valid query syntax");
        let probability = doc.selection_probability(&query);
        println!("  P({text})  =  {probability:.3}");
    }

    // -----------------------------------------------------------------------
    // 4. The session API: persist the document, then stage and commit a
    //    probabilistic update — insert E below A when D is present, with
    //    confidence 0.9.
    // -----------------------------------------------------------------------
    let storage =
        std::env::temp_dir().join(format!("pxml-quickstart-example-{}", std::process::id()));
    let session = Session::open(&storage, SessionConfig::default()).expect("session opens");
    let handle = session
        .create_fuzzy("slide12", doc.clone())
        .expect("document created");

    let pattern = Pattern::parse("A { D }").expect("valid query syntax");
    let target = pattern.root();
    let update = Update::matching(pattern)
        .insert_at(
            target,
            parse_data_tree("<E>found-it</E>").expect("valid XML"),
        )
        .with_confidence(0.9);
    let receipt = handle
        .begin()
        .stage(update.clone())
        .commit()
        .expect("commit succeeds");

    println!("\n== After inserting E (confidence 0.9, when D present) ==");
    let stats = &receipt.updates[0];
    println!(
        "  matches: {}, inserted nodes: {}",
        stats.match_count, stats.inserted_nodes
    );
    let updated = handle.snapshot().expect("document exists");
    println!("  {}", updated.tree());
    let e_query = Pattern::parse("A { E }").expect("valid query syntax");
    println!(
        "  P(A has an E child) = {:.3}",
        updated.selection_probability(&e_query)
    );

    // -----------------------------------------------------------------------
    // 5. The two semantics agree (the commutation theorems): committing the
    //    staged update equals updating every possible world.
    // -----------------------------------------------------------------------
    let transaction = update.build().expect("valid confidence");
    let via_worlds = doc
        .to_possible_worlds()
        .expect("expansion")
        .update(&transaction);
    let via_fuzzy = updated.to_possible_worlds().expect("expansion");
    println!(
        "\nupdate/semantics diagram commutes: {}",
        via_worlds.equivalent(&via_fuzzy, 1e-9)
    );

    drop(handle);
    drop(session);
    let _ = std::fs::remove_dir_all(&storage);
}
