//! The full warehouse architecture of slide 3 on the session API: simulated
//! imprecise modules stage probabilistic updates into atomically committed
//! transactions, a user runs tree-pattern queries through a document handle,
//! the session simplifies inline and checkpoints itself, and the state
//! survives a restart.
//!
//! Run with `cargo run --example warehouse_pipeline`.

use pxml::gen::scenarios::{people_directory, PeopleScenarioConfig};
use pxml::prelude::*;
use pxml::warehouse::{run_modules, DataCleaningModule, ExtractionModule, SourceModule};

fn main() {
    let storage =
        std::env::temp_dir().join(format!("pxml-warehouse-example-{}", std::process::id()));
    let people = 12;

    // -----------------------------------------------------------------------
    // 1. Open the session and load the seed directory.
    // -----------------------------------------------------------------------
    let session = Session::open(
        &storage,
        SessionConfig {
            simplify: SimplifyPolicy::Inline,
            compaction: CompactionPolicy::EveryNBatches(16),
            ..SessionConfig::default()
        },
    )
    .expect("session opens");
    let scenario = PeopleScenarioConfig {
        people,
        ..PeopleScenarioConfig::default()
    };
    let document = session
        .create("people", people_directory(&scenario))
        .expect("document created");
    println!(
        "warehouse storage: {}",
        session
            .storage_root()
            .expect("the default backend is file-backed")
            .display()
    );

    // -----------------------------------------------------------------------
    // 2. Three imprecise modules feed the document (slide 3's Module 1..3);
    //    each round-robin round commits one staged transaction.
    // -----------------------------------------------------------------------
    let mut modules: Vec<Box<dyn SourceModule>> = vec![
        Box::new(ExtractionModule::new("web-extractor", 1, people, 40, 0.9)),
        Box::new(ExtractionModule::new("nlp-pipeline", 2, people, 40, 0.6)),
        Box::new(DataCleaningModule::new("data-cleaning", 3, people, 20)),
    ];
    let pushed = run_modules(&document, &mut modules).expect("modules run");
    println!("\n== Updates pushed by the modules ==");
    for (module, count) in &pushed {
        println!("  {module:<15} {count} update transaction(s)");
    }

    // -----------------------------------------------------------------------
    // 3. The query interface: results + confidence.
    // -----------------------------------------------------------------------
    println!("\n== Queries ==");
    for text in [
        "person { phone }",
        "person { email }",
        "person { name, city }",
    ] {
        let query = Pattern::parse(text).expect("valid query");
        let result = document.query(&query).expect("query runs");
        let best = result
            .matches
            .iter()
            .map(|m| m.probability)
            .fold(0.0_f64, f64::max);
        println!(
            "  {text:<24} {} probabilistic answer(s), best confidence {:.3}",
            result.len(),
            best
        );
    }

    // -----------------------------------------------------------------------
    // 4. Maintenance and persistence. Inline simplification already ran at
    //    every commit; an explicit pass checkpoints on top.
    // -----------------------------------------------------------------------
    let snapshot = document.snapshot().expect("document exists");
    println!("\n== Document health ==");
    println!("  nodes: {}", snapshot.node_count());
    println!("  events: {}", snapshot.event_count());
    println!(
        "  condition literals: {}",
        snapshot.condition_literal_count()
    );
    let report = document.simplify().expect("simplification succeeds");
    let after = document.snapshot().expect("document exists");
    println!(
        "  after explicit simplification: {} nodes, {} events, {} literals ({} passes)",
        after.node_count(),
        after.event_count(),
        after.condition_literal_count(),
        report.passes
    );
    println!("  session stats: {:?}", session.stats());

    // -----------------------------------------------------------------------
    // 5. Restart: recover from the checkpoint + journal.
    // -----------------------------------------------------------------------
    drop(document);
    drop(session);
    let reopened = Session::open(&storage, SessionConfig::default()).expect("reopens");
    let people_again = reopened.document("people").expect("document recovered");
    let phones = Pattern::parse("person { phone }").expect("valid query");
    println!(
        "\nafter restart, {} phone answer(s) are still there",
        people_again.query(&phones).expect("query runs").len()
    );

    // Clean up the scratch directory so repeated runs start fresh.
    drop(people_again);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&storage);
}
