//! The conditional-replacement example of slide 15: "replace C by D if B is
//! present, with confidence 0.9", showing how deletions duplicate nodes and
//! how the apply pipeline's `SimplifyPolicy` keeps documents small — inline,
//! where the duplication is created.
//!
//! Run with `cargo run --example conditional_replacement`.

use pxml::prelude::*;

fn print_document(title: &str, doc: &FuzzyTree) {
    println!("== {title} ==");
    for node in doc.tree().nodes() {
        let indent = "  ".repeat(doc.tree().depth(node));
        let condition = doc.condition(node);
        let annotation = if condition.is_empty() {
            String::new()
        } else {
            format!("   [{}]", condition.display(doc.events()))
        };
        println!("  {indent}{}{annotation}", doc.tree().label(node));
    }
    println!("{}", doc.events());
}

/// The input document: A(B[w1], C[w2]) with P(w1)=0.8, P(w2)=0.7.
fn slide15_document() -> FuzzyTree {
    let mut doc = FuzzyTree::new("A");
    let w1 = doc.add_event("w1", 0.8).expect("fresh event");
    let w2 = doc.add_event("w2", 0.7).expect("fresh event");
    let root = doc.root();
    let b = doc.add_element(root, "B");
    doc.set_condition(b, Condition::from_literal(Literal::pos(w1)))
        .expect("not root");
    let c = doc.add_element(root, "C");
    doc.set_condition(c, Condition::from_literal(Literal::pos(w2)))
        .expect("not root");
    doc
}

/// The probabilistic replacement: where A has children B and C, delete C and
/// insert D, with the given confidence.
fn replacement(confidence: f64) -> Update {
    let pattern = Pattern::parse("/A { B, C }").expect("valid query");
    let ids: Vec<_> = pattern.node_ids().collect();
    Update::matching(pattern)
        .insert_at(ids[0], parse_data_tree("<D/>").expect("valid XML"))
        .delete_at(ids[2])
        .with_confidence(confidence)
}

fn main() {
    let mut doc = slide15_document();
    print_document("Before the update", &doc);

    // The slide-15 replacement, applied through the raw pipeline so the
    // duplication it creates stays visible.
    let transaction = replacement(0.9).build().expect("valid confidence");
    let stats = transaction
        .apply_to_fuzzy(&mut doc)
        .expect("update applies");
    println!(
        "applied: {} match(es), {} node(s) inserted, {} duplicated, {} removed\n",
        stats.applied_matches, stats.inserted_nodes, stats.duplicated_nodes, stats.removed_nodes
    );
    print_document("After the conditional replacement (slide 15)", &doc);

    // Chain more low-confidence replacements to show the growth the paper
    // warns about — once without any simplification, once with the pipeline's
    // inline policy.
    let chained = 3;
    let mut raw = doc.clone();
    let mut inline = doc.clone();
    println!("chained low-confidence deletions, SimplifyPolicy::Never vs Inline:");
    for round in 0..chained {
        let delete_c = {
            let pattern = Pattern::parse("/A { B, C }").expect("valid query");
            let ids: Vec<_> = pattern.node_ids().collect();
            Update::matching(pattern)
                .delete_at(ids[2])
                .with_confidence(0.5)
                .build()
                .expect("valid confidence")
        };
        delete_c
            .apply_to_fuzzy_with(&mut raw, SimplifyPolicy::Never)
            .expect("update applies");
        delete_c
            .apply_to_fuzzy_with(&mut inline, SimplifyPolicy::Inline)
            .expect("update applies");
        println!(
            "  round #{round}: never  → {:>3} nodes, {:>3} literals, {:>2} events   inline → {:>3} nodes, {:>3} literals, {:>2} events",
            raw.node_count(),
            raw.condition_literal_count(),
            raw.event_count(),
            inline.node_count(),
            inline.condition_literal_count(),
            inline.event_count()
        );
    }

    // A final explicit pass over the raw document shows what the bolted-on
    // approach wins back afterwards.
    let before = (
        raw.node_count(),
        raw.condition_literal_count(),
        raw.event_count(),
    );
    let report = Simplifier::new()
        .run(&mut raw)
        .expect("simplification succeeds");
    println!(
        "\npost-hoc simplification of the Never document: {:?}\n  {} → {} nodes, {} → {} literals, {} → {} events",
        report,
        before.0,
        raw.node_count(),
        before.1,
        raw.condition_literal_count(),
        before.2,
        raw.event_count()
    );
    print_document("Inline-simplified document", &inline);
}
