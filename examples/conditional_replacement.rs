//! The conditional-replacement example of slide 15: "replace C by D if B is
//! present, with confidence 0.9", showing how deletions duplicate nodes and
//! how simplification keeps documents small afterwards.
//!
//! Run with `cargo run --example conditional_replacement`.

use pxml::prelude::*;

fn print_document(title: &str, doc: &FuzzyTree) {
    println!("== {title} ==");
    for node in doc.tree().nodes() {
        let indent = "  ".repeat(doc.tree().depth(node));
        let condition = doc.condition(node);
        let annotation = if condition.is_empty() {
            String::new()
        } else {
            format!("   [{}]", condition.display(doc.events()))
        };
        println!("  {indent}{}{annotation}", doc.tree().label(node));
    }
    println!("{}", doc.events());
}

fn main() {
    // The input document: A(B[w1], C[w2]) with P(w1)=0.8, P(w2)=0.7.
    let mut doc = FuzzyTree::new("A");
    let w1 = doc.add_event("w1", 0.8).expect("fresh event");
    let w2 = doc.add_event("w2", 0.7).expect("fresh event");
    let root = doc.root();
    let b = doc.add_element(root, "B");
    doc.set_condition(b, Condition::from_literal(Literal::pos(w1)))
        .expect("not root");
    let c = doc.add_element(root, "C");
    doc.set_condition(c, Condition::from_literal(Literal::pos(w2)))
        .expect("not root");
    print_document("Before the update", &doc);

    // The probabilistic replacement.
    let pattern = Pattern::parse("/A { B, C }").expect("valid query");
    let ids: Vec<_> = pattern.node_ids().collect();
    let replacement = UpdateTransaction::new(pattern, 0.9)
        .expect("valid confidence")
        .with_insert(ids[0], parse_data_tree("<D/>").expect("valid XML"))
        .with_delete(ids[2]);
    let stats = replacement
        .apply_to_fuzzy(&mut doc)
        .expect("update applies");
    println!(
        "applied: {} match(es), {} node(s) inserted, {} duplicated, {} removed\n",
        stats.applied_matches, stats.inserted_nodes, stats.duplicated_nodes, stats.removed_nodes
    );
    print_document("After the conditional replacement (slide 15)", &doc);

    // Chain more low-confidence replacements to show the growth the paper
    // warns about, then simplify.
    for round in 0..3 {
        let pattern = Pattern::parse("/A { B, C }").expect("valid query");
        let ids: Vec<_> = pattern.node_ids().collect();
        let again = UpdateTransaction::new(pattern, 0.5)
            .expect("valid confidence")
            .with_delete(ids[2]);
        again.apply_to_fuzzy(&mut doc).expect("update applies");
        println!(
            "after chained deletion #{round}: {} nodes, {} condition literals, {} events",
            doc.node_count(),
            doc.condition_literal_count(),
            doc.event_count()
        );
    }

    let before = (
        doc.node_count(),
        doc.condition_literal_count(),
        doc.event_count(),
    );
    let report = Simplifier::new()
        .run(&mut doc)
        .expect("simplification succeeds");
    println!(
        "\nsimplification: {:?}\n  {} → {} nodes, {} → {} literals, {} → {} events",
        report,
        before.0,
        doc.node_count(),
        before.1,
        doc.condition_literal_count(),
        before.2,
        doc.event_count()
    );
    print_document("After simplification", &doc);
}
